package browser

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// testWorld builds a tiny public network with one site.
func testWorld(page *webdoc.Page) *simnet.Network {
	net := simnet.NewNetwork(7)
	addr := netip.MustParseAddr("203.0.113.10")
	net.Resolver.Add("site.test", addr)
	net.BindService(addr, 443, &simnet.TLSInfo{CommonName: "site.test"}, simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 200, ContentType: "text/html", BodySize: 5000, Document: page}
	}))
	return net
}

func newTestBrowser(net *simnet.Network, os hostenv.OS) *Browser {
	opts := DefaultOptions()
	opts.Background = false
	return New(hostenv.DefaultProfile(os), net, opts)
}

func TestVisitSuccessfulLoad(t *testing.T) {
	page := &webdoc.Page{URL: "https://site.test/"}
	b := newTestBrowser(testWorld(page), hostenv.Linux)
	res := b.Visit("https://site.test/")
	if !res.OK() {
		t.Fatalf("load failed: %v", res.Err)
	}
	if res.CommittedAt <= 0 {
		t.Error("CommittedAt not set")
	}
	flows := res.Log.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(flows))
	}
	if flows[0].StatusCode != 200 || flows[0].Failed() {
		t.Errorf("landing flow = %+v", flows[0])
	}
}

func TestVisitNXDomain(t *testing.T) {
	b := newTestBrowser(simnet.NewNetwork(1), hostenv.Linux)
	res := b.Visit("http://unresolvable.test/")
	if res.Err != simnet.ErrNameNotResolved {
		t.Fatalf("err = %v, want ERR_NAME_NOT_RESOLVED", res.Err)
	}
	// The resolver job and the failed request must both be logged.
	var sawDNS, sawErr bool
	for _, e := range res.Log.Events {
		if e.Type == netlog.TypeHostResolverJob {
			sawDNS = true
		}
		if e.Type == netlog.TypeURLRequestError && e.ParamString("net_error") == "ERR_NAME_NOT_RESOLVED" {
			sawErr = true
		}
	}
	if !sawDNS || !sawErr {
		t.Errorf("missing telemetry: dns=%v err=%v", sawDNS, sawErr)
	}
}

func TestVisitConnectionRefused(t *testing.T) {
	net := simnet.NewNetwork(1)
	addr := netip.MustParseAddr("203.0.113.11")
	net.Resolver.Add("refuser.test", addr)
	net.AddHost(addr) // host up, no listener
	b := newTestBrowser(net, hostenv.Linux)
	res := b.Visit("http://refuser.test/")
	if res.Err != simnet.ErrConnectionRefused {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestVisitBadCertificate(t *testing.T) {
	net := simnet.NewNetwork(1)
	addr := netip.MustParseAddr("203.0.113.12")
	net.Resolver.Add("badcert.test", addr)
	net.BindService(addr, 443, &simnet.TLSInfo{CommonName: "other.test"}, simnet.ServiceFunc(func(*simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 200}
	}))
	b := newTestBrowser(net, hostenv.Linux)
	res := b.Visit("https://badcert.test/")
	if res.Err != simnet.ErrCertCommonNameBad {
		t.Fatalf("err = %v, want ERR_CERT_COMMON_NAME_INVALID", res.Err)
	}
}

func TestVisitExecutesPageSteps(t *testing.T) {
	page := &webdoc.Page{
		URL: "https://site.test/",
		Steps: []webdoc.Step{
			{At: 2 * time.Second, URL: "wss://localhost:5939/", Initiator: "blob:threatmetrix"},
			{At: 1 * time.Second, URL: "http://127.0.0.1:8080/wp-content/x.jpg", Initiator: "img"},
		},
	}
	b := newTestBrowser(testWorld(page), hostenv.Windows)
	res := b.Visit("https://site.test/")
	if !res.OK() {
		t.Fatalf("load failed: %v", res.Err)
	}
	var urls []string
	for _, f := range res.Log.Flows() {
		urls = append(urls, f.URL)
	}
	want := []string{"wss://localhost:5939/", "http://127.0.0.1:8080/wp-content/x.jpg"}
	for _, w := range want {
		found := false
		for _, u := range urls {
			if u == w {
				found = true
			}
		}
		if !found {
			t.Errorf("step %q not executed; flows: %v", w, urls)
		}
	}
	// Steps run after commit, in At order, at commit+At.
	flows := res.Log.Flows()
	var first, second *netlog.Flow
	for i := range flows {
		switch flows[i].URL {
		case want[1]:
			first = &flows[i]
		case want[0]:
			second = &flows[i]
		}
	}
	if first == nil || second == nil {
		t.Fatal("local flows missing")
	}
	if !(first.Start < second.Start) {
		t.Error("steps not executed in At order")
	}
	if first.Start < res.CommittedAt+time.Second {
		t.Errorf("step started at %v, before commit(%v)+1s", first.Start, res.CommittedAt)
	}
}

func TestVisitWindowCutsLateSteps(t *testing.T) {
	page := &webdoc.Page{
		URL: "https://site.test/",
		Steps: []webdoc.Step{
			{At: 50 * time.Second, URL: "http://localhost:9999/late", Initiator: "script"},
		},
	}
	b := newTestBrowser(testWorld(page), hostenv.Linux)
	res := b.Visit("https://site.test/")
	for _, f := range res.Log.Flows() {
		if strings.Contains(f.URL, "/late") {
			t.Error("a step beyond the 20s window was executed")
		}
	}
}

func TestLocalhostProbeOutcomes(t *testing.T) {
	// Closed localhost port → refused, fast. Open non-WS port (Windows
	// RDP on 3389): a WSS probe dies at the TLS layer (RDP speaks no
	// TLS), a plain WS probe gets an invalid handshake. All three are
	// logged — the request attempt is the observable, not its success.
	page := &webdoc.Page{
		URL: "https://site.test/",
		Steps: []webdoc.Step{
			{At: time.Second, URL: "wss://localhost:5939/", Initiator: "blob:threatmetrix"},
			{At: time.Second, URL: "wss://localhost:3389/", Initiator: "blob:threatmetrix"},
			{At: time.Second, URL: "ws://localhost:3389/", Initiator: "script"},
		},
	}
	b := newTestBrowser(testWorld(page), hostenv.Windows)
	res := b.Visit("https://site.test/")
	var closed, openTLS, openWS *netlog.Flow
	flows := res.Log.Flows()
	for i := range flows {
		switch flows[i].URL {
		case "wss://localhost:5939/":
			closed = &flows[i]
		case "wss://localhost:3389/":
			openTLS = &flows[i]
		case "ws://localhost:3389/":
			openWS = &flows[i]
		}
	}
	if closed == nil || openTLS == nil || openWS == nil {
		t.Fatal("probe flows missing")
	}
	if closed.NetError != "ERR_CONNECTION_REFUSED" {
		t.Errorf("closed port error = %q", closed.NetError)
	}
	// The refused probe must resolve fast (timing side channel, §4.3.2).
	if closed.Duration() > 100*time.Millisecond {
		t.Errorf("refused localhost probe took %v", closed.Duration())
	}
	if openTLS.NetError != "ERR_SSL_PROTOCOL_ERROR" {
		t.Errorf("open raw port over WSS error = %q", openTLS.NetError)
	}
	if openWS.NetError != "ERR_INVALID_HTTP_RESPONSE" {
		t.Errorf("open raw port over WS error = %q", openWS.NetError)
	}
}

func TestRedirectToLocalhostIsFollowedAndLogged(t *testing.T) {
	net := simnet.NewNetwork(1)
	addr := netip.MustParseAddr("203.0.113.13")
	net.Resolver.Add("redirector.test", addr)
	net.BindService(addr, 80, nil, simnet.ServiceFunc(func(*simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 302, Location: "http://127.0.0.1/"}
	}))
	b := newTestBrowser(net, hostenv.Linux)
	res := b.Visit("http://redirector.test/")
	// The local destination refuses, so the navigation fails — but the
	// redirect and the attempt must be visible in telemetry.
	if res.Err != simnet.ErrConnectionRefused {
		t.Fatalf("err = %v", res.Err)
	}
	flows := res.Log.Flows()
	if len(flows) != 1 {
		t.Fatalf("redirect chain must stay one flow, got %d", len(flows))
	}
	f := flows[0]
	if len(f.RedirectedTo) != 1 || f.RedirectedTo[0] != "http://127.0.0.1/" {
		t.Errorf("redirects = %v", f.RedirectedTo)
	}
}

func TestRedirectLoopAborts(t *testing.T) {
	net := simnet.NewNetwork(1)
	addr := netip.MustParseAddr("203.0.113.14")
	net.Resolver.Add("loop.test", addr)
	net.BindService(addr, 80, nil, simnet.ServiceFunc(func(*simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 301, Location: "http://loop.test/"}
	}))
	b := newTestBrowser(net, hostenv.Linux)
	res := b.Visit("http://loop.test/")
	if res.Err != simnet.ErrTooManyRedirects {
		t.Fatalf("err = %v, want ERR_TOO_MANY_REDIRECTS", res.Err)
	}
}

func TestSafeBrowsingToggle(t *testing.T) {
	page := &webdoc.Page{URL: "https://site.test/"}
	net := testWorld(page)
	opts := DefaultOptions()
	opts.Background = false
	opts.SafeBrowsing = true
	opts.SafeBrowsingList = map[string]bool{"site.test": true}
	b := New(hostenv.DefaultProfile(hostenv.Linux), net, opts)
	if res := b.Visit("https://site.test/"); res.Err != simnet.ErrBlockedByClient {
		t.Fatalf("Safe Browsing on: err = %v", res.Err)
	}
	// The crawl configuration disables it (§3.1).
	opts.SafeBrowsing = false
	b = New(hostenv.DefaultProfile(hostenv.Linux), net, opts)
	if res := b.Visit("https://site.test/"); !res.OK() {
		t.Fatalf("Safe Browsing off: err = %v", res.Err)
	}
}

func TestBackgroundTrafficUsesBrowserSource(t *testing.T) {
	page := &webdoc.Page{URL: "https://site.test/"}
	opts := DefaultOptions()
	opts.Background = true
	b := New(hostenv.DefaultProfile(hostenv.Linux), testWorld(page), opts)
	res := b.Visit("https://site.test/")
	bg := 0
	for _, e := range res.Log.Events {
		if e.Source.Type == netlog.SourceBrowser {
			bg++
			if e.Type != netlog.TypeBrowserBackgroundRequest {
				t.Errorf("browser source with event type %v", e.Type)
			}
		}
	}
	if bg == 0 {
		t.Error("no browser-internal traffic emitted")
	}
}

func TestWebSocketSOPExemptionRecorded(t *testing.T) {
	page := &webdoc.Page{
		URL:   "https://site.test/",
		Steps: []webdoc.Step{{At: time.Second, URL: "ws://localhost:28337/", Initiator: "script"}},
	}
	b := newTestBrowser(testWorld(page), hostenv.Linux)
	res := b.Visit("https://site.test/")
	for _, f := range res.Log.Flows() {
		if f.URL == "ws://localhost:28337/" {
			for _, e := range f.Events {
				if e.Type == netlog.TypeRequestAlive && e.Phase == netlog.PhaseBegin {
					if exempt, _ := e.Params["sop_exempt"].(bool); !exempt {
						t.Error("WebSocket flow not marked SOP-exempt")
					}
					return
				}
			}
		}
	}
	t.Fatal("WebSocket flow not found")
}

func TestVisitUnsupportedScheme(t *testing.T) {
	b := newTestBrowser(simnet.NewNetwork(1), hostenv.Linux)
	res := b.Visit("ftp://site.test/")
	if !res.Err.IsFailure() {
		t.Error("unsupported scheme must fail")
	}
}

func TestEmptyResponseFromRawListener(t *testing.T) {
	net := simnet.NewNetwork(1)
	addr := netip.MustParseAddr("203.0.113.15")
	net.Resolver.Add("raw.test", addr)
	net.BindService(addr, 80, nil, simnet.ServiceFunc(func(*simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 0}
	}))
	b := newTestBrowser(net, hostenv.Linux)
	if res := b.Visit("http://raw.test/"); res.Err != simnet.ErrEmptyResponse {
		t.Fatalf("err = %v, want ERR_EMPTY_RESPONSE", res.Err)
	}
}

func TestVisitsAreIndependent(t *testing.T) {
	page := &webdoc.Page{URL: "https://site.test/"}
	b := newTestBrowser(testWorld(page), hostenv.Linux)
	a := b.Visit("https://site.test/")
	c := b.Visit("https://site.test/")
	if a.Log.Len() != c.Log.Len() {
		t.Errorf("repeat visit telemetry differs: %d vs %d events", a.Log.Len(), c.Log.Len())
	}
	if a.CommittedAt != c.CommittedAt {
		t.Errorf("repeat visit timing differs: %v vs %v", a.CommittedAt, c.CommittedAt)
	}
}

func TestBoundedCapture(t *testing.T) {
	page := &webdoc.Page{URL: "https://site.test/"}
	for i := 0; i < 30; i++ {
		page.Steps = append(page.Steps, webdoc.Step{
			At:  time.Duration(i) * 100 * time.Millisecond,
			URL: fmt.Sprintf("http://127.0.0.1:%d/x", 8000+i), Initiator: "script",
		})
	}
	opts := DefaultOptions()
	opts.Background = false
	opts.MaxLogEvents = 20
	b := New(hostenv.DefaultProfile(hostenv.Linux), testWorld(page), opts)
	res := b.Visit("https://site.test/")
	if res.Log.Len() > 20 {
		t.Errorf("capture exceeded bound: %d events", res.Log.Len())
	}
}

func TestPanickingServiceBehavesLikeCrashedServer(t *testing.T) {
	net := simnet.NewNetwork(1)
	addr := netip.MustParseAddr("203.0.113.16")
	net.Resolver.Add("crasher.test", addr)
	net.BindService(addr, 80, nil, simnet.ServiceFunc(func(*simnet.Request) *simnet.Response {
		panic("buggy site implementation")
	}))
	b := newTestBrowser(net, hostenv.Linux)
	res := b.Visit("http://crasher.test/")
	if res.Err != simnet.ErrEmptyResponse {
		t.Fatalf("err = %v, want ERR_EMPTY_RESPONSE (crashed server)", res.Err)
	}
}

func TestConnectionKeepAliveReuse(t *testing.T) {
	// Two fetches to the same origin share one socket; the WebSocket to
	// the same origin opens a fresh one.
	page := &webdoc.Page{
		URL: "https://site.test/",
		Steps: []webdoc.Step{
			{At: 100 * time.Millisecond, URL: "https://site.test/a.js", Initiator: "parser"},
			{At: 200 * time.Millisecond, URL: "https://site.test/b.js", Initiator: "parser"},
			{At: 300 * time.Millisecond, URL: "wss://site.test/rtc", Initiator: "script"},
		},
	}
	b := newTestBrowser(testWorld(page), hostenv.Linux)
	res := b.Visit("https://site.test/")
	if !res.OK() {
		t.Fatal(res.Err)
	}
	connects, reuses := 0, 0
	for _, e := range res.Log.Events {
		switch {
		case e.Type == netlog.TypeTCPConnect && e.Phase == netlog.PhaseBegin:
			connects++
		case e.Type == netlog.TypeSocketInUse:
			reuses++
		}
	}
	// One connect for the landing page (reused by both subresources)
	// plus one fresh connect for the WebSocket.
	if connects != 2 {
		t.Errorf("TCP connects = %d, want 2 (keep-alive + fresh WS socket)", connects)
	}
	if reuses != 2 {
		t.Errorf("socket reuses = %d, want 2", reuses)
	}
}
