package browser

// Chrome refuses to fetch from a set of well-known "unsafe" ports
// (net/base/port_util.cc) to prevent cross-protocol attacks; the attempt
// is logged and fails with ERR_UNSAFE_PORT before any socket is opened.
// None of the ports the study observed websites probing are on the list
// (e.g. 1080 is restricted in Firefox but not Chrome), which is why
// those probes were visible at all — but the browser model enforces the
// list so that the boundary is part of the reproduction.
var restrictedPorts = map[uint16]bool{
	1: true, 7: true, 9: true, 11: true, 13: true, 15: true, 17: true,
	19: true, 20: true, 21: true, 22: true, 23: true, 25: true, 37: true,
	42: true, 43: true, 53: true, 69: true, 77: true, 79: true, 87: true,
	95: true, 101: true, 102: true, 103: true, 104: true, 109: true,
	110: true, 111: true, 113: true, 115: true, 117: true, 119: true,
	123: true, 135: true, 137: true, 139: true, 143: true, 161: true,
	179: true, 389: true, 427: true, 465: true, 512: true, 513: true,
	514: true, 515: true, 526: true, 530: true, 531: true, 532: true,
	540: true, 548: true, 554: true, 556: true, 563: true, 587: true,
	601: true, 636: true, 989: true, 990: true, 993: true, 995: true,
	1719: true, 1720: true, 1723: true, 2049: true, 3659: true,
	4045: true, 5060: true, 5061: true, 6000: true, 6566: true,
	6665: true, 6666: true, 6667: true, 6668: true, 6669: true,
	6697: true, 10080: true,
}

// PortRestricted reports whether Chrome would refuse a fetch to the
// port.
func PortRestricted(port uint16) bool { return restrictedPorts[port] }
