package browser

import (
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/html"
	"github.com/knockandtalk/knockandtalk/internal/script"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
)

// The browser consumes documents in two forms: the pre-compiled
// webdoc.Page the synthetic web's fast path serves, or raw HTML bytes.
// Raw HTML goes through the real pipeline — tokenize, extract resource
// tags, run inline page scripts — and compiles to the same step model.
// The two paths are equivalence-tested (static tag fetches schedule at
// parse order, as in a real browser; script-driven behavior keeps its
// exact offsets).

// staticStagger is the parse-order pacing for tag-declared resources.
const staticStagger = 75 * time.Millisecond

// compileHTML parses a raw document into the browser's page model.
// Script parse failures are tolerated the way a browser tolerates a
// throwing script: the rest of the page still loads.
func compileHTML(body []byte, baseURL string, osName string) *webdoc.Page {
	doc := html.Parse(body, baseURL)
	page := &webdoc.Page{URL: baseURL, BodySize: len(body)}
	at := 40 * time.Millisecond
	for _, res := range doc.Resources {
		initiator := "parser"
		if res.Kind == html.KindIframe {
			initiator = "iframe"
		}
		page.Steps = append(page.Steps, webdoc.Step{At: at, URL: res.URL, Initiator: initiator})
		at += staticStagger
	}
	env := script.Env{OS: strings.ToLower(osName)}
	for _, inline := range doc.Scripts {
		prog, err := script.Parse(inline.Body)
		if err != nil {
			continue
		}
		page.Steps = append(page.Steps, prog.Run(env)...)
	}
	return page
}
