package realnet

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
)

func TestTransportRecordsRealLoopbackTraffic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "hello")
	}))
	defer srv.Close()

	rec := netlog.NewRecorder()
	client := &http.Client{Transport: NewTransport(rec)}
	resp, err := client.Get(srv.URL + "/wp-content/uploads/x.jpg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	findings := localnet.FromLog(rec.Log())
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1 (httptest binds 127.0.0.1)", len(findings))
	}
	f := findings[0]
	if f.Dest != localnet.DestLocalhost || f.StatusCode != 200 || f.Path != "/wp-content/uploads/x.jpg" {
		t.Errorf("finding = %+v", f)
	}
}

func TestTransportRecordsRefusedConnection(t *testing.T) {
	// Find a port that is certainly closed: bind then release it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()

	rec := netlog.NewRecorder()
	client := &http.Client{Transport: NewTransport(rec), Timeout: 2 * time.Second}
	_, err = client.Get(fmt.Sprintf("http://127.0.0.1:%d/", port))
	if err == nil {
		t.Fatal("expected connection failure")
	}
	findings := localnet.FromLog(rec.Log())
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	if findings[0].NetError != "ERR_CONNECTION_REFUSED" {
		t.Errorf("net error = %q, want ERR_CONNECTION_REFUSED", findings[0].NetError)
	}
}

func TestTransportRecordsRedirect(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			http.Redirect(w, r, "/target", http.StatusFound)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	rec := netlog.NewRecorder()
	client := &http.Client{Transport: NewTransport(rec)}
	resp, err := client.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sawRedirect := false
	for _, e := range rec.Log().Events {
		if e.Type == netlog.TypeURLRequestRedirect && e.ParamString("location") == "/target" {
			sawRedirect = true
		}
	}
	if !sawRedirect {
		t.Error("redirect event not recorded")
	}
	// Both hops are localhost findings.
	if got := len(localnet.FromLog(rec.Log())); got != 2 {
		t.Errorf("findings = %d, want 2 hops", got)
	}
}

func TestProbePortOpenAndClosed(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	openPort := uint16(l.Addr().(*net.TCPAddr).Port)

	rec := netlog.NewRecorder()
	open := ProbePort(rec, 0, "127.0.0.1", openPort, time.Second)
	if !open.Open || open.Err != "" {
		t.Errorf("open probe = %+v", open)
	}

	l2, _ := net.Listen("tcp", "127.0.0.1:0")
	closedPort := uint16(l2.Addr().(*net.TCPAddr).Port)
	l2.Close()
	closed := ProbePort(rec, time.Second, "127.0.0.1", closedPort, time.Second)
	if closed.Open || closed.Err != "ERR_CONNECTION_REFUSED" {
		t.Errorf("closed probe = %+v", closed)
	}
	// The timing side channel: both answers arrive quickly on loopback
	// (no filtering), far below the timeout.
	if closed.Elapsed > 500*time.Millisecond {
		t.Errorf("refused probe took %v", closed.Elapsed)
	}
	// Telemetry captured both attempts.
	events := rec.Log().Events
	if len(events) < 4 {
		t.Errorf("probe telemetry too thin: %d events", len(events))
	}
}
