// Package realnet bridges the pipeline to the real network stack: an
// instrumented http.RoundTripper and a TCP port prober that emit the
// same NetLog events the simulated browser produces, so the detector
// and classifier run unchanged against genuine loopback and LAN
// traffic. This is what a deployment of the paper's methodology on live
// machines looks like, and it powers the livedetector example.
package realnet

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
)

// Transport is an http.RoundTripper that records every request and its
// outcome into a NetLog recorder. Timestamps are offsets from the first
// recorded event, matching the per-visit clock of the simulated crawls.
type Transport struct {
	// Base performs the actual exchange; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Rec receives the telemetry.
	Rec *netlog.Recorder

	once  sync.Once
	start time.Time
}

// NewTransport returns a transport recording into rec.
func NewTransport(rec *netlog.Recorder) *Transport {
	return &Transport{Rec: rec}
}

func (t *Transport) since() time.Duration {
	t.once.Do(func() { t.start = time.Now() })
	return time.Since(t.start)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	src := t.Rec.NewSource(netlog.SourceURLRequest)
	t.Rec.Begin(t.since(), netlog.TypeRequestAlive, src, map[string]any{
		"url":       req.URL.String(),
		"method":    req.Method,
		"initiator": "http-client",
	})
	resp, err := base.RoundTrip(req)
	if err != nil {
		t.Rec.Point(t.since(), netlog.TypeURLRequestError, src, map[string]any{
			"url": req.URL.String(), "net_error": string(classifyErr(err)),
		})
		t.Rec.End(t.since(), netlog.TypeRequestAlive, src, nil)
		return nil, err
	}
	params := map[string]any{"status_code": resp.StatusCode}
	if loc := resp.Header.Get("Location"); loc != "" && resp.StatusCode >= 300 && resp.StatusCode < 400 {
		t.Rec.Point(t.since(), netlog.TypeURLRequestRedirect, src, map[string]any{
			"url": req.URL.String(), "location": loc,
		})
	}
	t.Rec.Point(t.since(), netlog.TypeHTTPTransactionReadHeaders, src, params)
	t.Rec.End(t.since(), netlog.TypeRequestAlive, src, params)
	return resp, nil
}

// classifyErr maps a Go transport error onto Chrome's error taxonomy.
func classifyErr(err error) simnet.NetError {
	switch {
	case errors.Is(err, syscall.ECONNREFUSED):
		return simnet.ErrConnectionRefused
	case errors.Is(err, syscall.ECONNRESET):
		return simnet.ErrConnectionReset
	case errors.Is(err, syscall.ETIMEDOUT):
		return simnet.ErrConnectionTimedOut
	}
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return simnet.ErrNameNotResolved
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return simnet.ErrConnectionTimedOut
	}
	return simnet.ErrAborted
}

// ProbeResult is the outcome of one TCP port probe.
type ProbeResult struct {
	Host    string
	Port    uint16
	Open    bool
	Err     simnet.NetError
	Elapsed time.Duration
}

// ProbePort attempts a TCP connection the way a web-based port scan
// does, recording the attempt. The timing side channel the paper
// hypothesizes for BIG-IP's bot defense is directly visible in Elapsed:
// refused ports answer immediately, filtered ports hit the timeout.
func ProbePort(rec *netlog.Recorder, at time.Duration, host string, port uint16, timeout time.Duration) ProbeResult {
	src := rec.NewSource(netlog.SourceSocket)
	addr := net.JoinHostPort(host, fmt.Sprint(port))
	rec.Begin(at, netlog.TypeTCPConnect, src, map[string]any{"address": addr})
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	elapsed := time.Since(start)
	res := ProbeResult{Host: host, Port: port, Elapsed: elapsed}
	if err != nil {
		res.Err = classifyErr(err)
		rec.Point(at+elapsed, netlog.TypeSocketError, src, map[string]any{"net_error": string(res.Err)})
		return res
	}
	conn.Close()
	res.Open = true
	rec.End(at+elapsed, netlog.TypeTCPConnect, src, nil)
	return res
}
