package portdb

import (
	"sort"
	"testing"
)

func TestThreatMetrixPortCount(t *testing.T) {
	ports := ThreatMetrixPorts()
	if len(ports) != 14 {
		t.Fatalf("ThreatMetrix scans 14 distinct localhost ports (§4.3.1); got %d", len(ports))
	}
	for _, p := range ports {
		e, ok := Lookup(p)
		if !ok {
			t.Errorf("port %d missing from Table 4 registry", p)
			continue
		}
		if e.UseCase != UseFraudDetection {
			t.Errorf("port %d (%s) classed as %v, want Fraud Detection", p, e.Service, e.UseCase)
		}
	}
}

func TestBigIPPortCount(t *testing.T) {
	ports := BigIPPorts()
	if len(ports) != 7 {
		t.Fatalf("BIG-IP probes 7 localhost ports (§4.3.2); got %d", len(ports))
	}
	malware := 0
	for _, p := range ports {
		e, ok := Lookup(p)
		if !ok {
			t.Errorf("port %d missing from Table 4 registry", p)
			continue
		}
		if e.UseCase != UseBotDetection {
			t.Errorf("port %d (%s) classed as %v, want Bot Detection", p, e.Service, e.UseCase)
		}
		if e.Malware {
			malware++
		}
	}
	// "4 out of the 7 ports scanned are notably used by well-known malware."
	if malware != 4 {
		t.Errorf("malware ports among BIG-IP set = %d, want 4", malware)
	}
}

func TestKnownEntries(t *testing.T) {
	cases := map[uint16]string{
		3389:  "Windows Remote Desktop",
		5939:  "TeamViewer",
		7070:  "AnyDesk Remote Desktop",
		17556: "Microsoft Edge WebDriver",
		9515:  "Malware: W32.Loxbot.A",
	}
	for port, svc := range cases {
		e, ok := Lookup(port)
		if !ok || e.Service != svc {
			t.Errorf("Lookup(%d) = %+v, %v; want service %q", port, e, ok, svc)
		}
	}
	if _, ok := Lookup(1); ok {
		t.Error("Lookup(1) should miss")
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Errorf("Table 4 expands to 21 port rows, got %d", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Port < all[j].Port }) {
		t.Error("All() not sorted by port")
	}
	// All() must return a copy.
	all[0].Service = "tampered"
	if e, _ := Lookup(all[0].Port); e.Service == "tampered" {
		t.Error("All() aliases internal storage")
	}
}

func TestByUseCasePartition(t *testing.T) {
	fraud := ByUseCase(UseFraudDetection)
	bot := ByUseCase(UseBotDetection)
	if len(fraud)+len(bot) != len(All()) {
		t.Errorf("use cases do not partition the table: %d + %d != %d", len(fraud), len(bot), len(All()))
	}
	seen := map[uint16]bool{}
	for _, p := range append(fraud, bot...) {
		if seen[p] {
			t.Errorf("port %d in both use cases", p)
		}
		seen[p] = true
	}
}

func TestUseCaseString(t *testing.T) {
	if UseFraudDetection.String() != "Fraud Detection" || UseBotDetection.String() != "Bot Detection" || UseUnknown.String() != "Unknown" {
		t.Error("use case labels wrong")
	}
}
