// Package portdb is the port-to-service registry behind Table 4 of the
// paper: the common services and malware that operate on the localhost
// ports scanned for fraud and bot detection. The mappings follow IANA's
// Service Name and Transport Protocol Port Number Registry and the SANS
// ISC port activity database, as the paper's analysis did.
package portdb

import "sort"

// UseCase is the anti-abuse purpose a scanned port serves.
type UseCase int

// Use cases from Table 4.
const (
	UseUnknown UseCase = iota
	UseFraudDetection
	UseBotDetection
)

// String returns the Table 4 label.
func (u UseCase) String() string {
	switch u {
	case UseFraudDetection:
		return "Fraud Detection"
	case UseBotDetection:
		return "Bot Detection"
	default:
		return "Unknown"
	}
}

// Entry is one row of the registry.
type Entry struct {
	Port    uint16
	Service string // service or malware family name
	Malware bool   // true when the port is a known-malware listener
	UseCase UseCase
}

// table reproduces Table 4 of the paper.
var table = []Entry{
	{3389, "Windows Remote Desktop", false, UseFraudDetection},
	{4444, "Malware: CrackDown, Prosiak, Swift Remote", true, UseBotDetection},
	{4653, "Malware: Cero", true, UseBotDetection},
	{5555, "Malware: ServeMe", true, UseBotDetection},
	{5279, "Unknown", false, UseFraudDetection},
	{5900, "Remote Framebuffer (e.g., VNC)", false, UseFraudDetection},
	{5901, "Remote Framebuffer (e.g., VNC)", false, UseFraudDetection},
	{5902, "Remote Framebuffer (e.g., VNC)", false, UseFraudDetection},
	{5903, "Remote Framebuffer (e.g., VNC)", false, UseFraudDetection},
	{5931, "AMMYY Remote Control", false, UseFraudDetection},
	{5939, "TeamViewer", false, UseFraudDetection},
	{5944, "Unknown (likely VNC)", false, UseFraudDetection},
	{5950, "Cisco Remote Expert Manager", false, UseFraudDetection},
	{6039, "X Window System", false, UseFraudDetection},
	{6040, "X Window System", false, UseFraudDetection},
	{63333, "Tripp Lite PowerAlert UPS", false, UseFraudDetection},
	{7054, "QuickTime Streaming Server", false, UseBotDetection},
	{7055, "QuickTime Streaming Server", false, UseBotDetection},
	{7070, "AnyDesk Remote Desktop", false, UseFraudDetection},
	{9515, "Malware: W32.Loxbot.A", true, UseBotDetection},
	{17556, "Microsoft Edge WebDriver", false, UseBotDetection},
}

var byPort = func() map[uint16]Entry {
	m := make(map[uint16]Entry, len(table))
	for _, e := range table {
		m[e.Port] = e
	}
	return m
}()

// Lookup returns the registry entry for a port.
func Lookup(port uint16) (Entry, bool) {
	e, ok := byPort[port]
	return e, ok
}

// All returns every entry sorted by port.
func All() []Entry {
	out := make([]Entry, len(table))
	copy(out, table)
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

// ByUseCase returns the ports associated with a use case, sorted.
func ByUseCase(u UseCase) []uint16 {
	var out []uint16
	for _, e := range table {
		if e.UseCase == u {
			out = append(out, e.Port)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ThreatMetrixPorts returns the 14 localhost ports probed over WSS by the
// ThreatMetrix fraud-detection script (§4.3.1): the standard ports for
// remote desktop software on Windows.
func ThreatMetrixPorts() []uint16 {
	return []uint16{3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040, 7070, 63333}
}

// BigIPPorts returns the 7 localhost ports probed over HTTP by BIG-IP ASM
// Bot Defense (§4.3.2): malware listeners plus browser-automation and
// historically exploited services.
func BigIPPorts() []uint16 {
	return []uint16{4444, 4653, 5555, 7054, 7055, 9515, 17556}
}
