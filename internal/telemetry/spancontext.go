package telemetry

// Distributed-trace identity: 128-bit trace IDs and 64-bit span IDs
// with W3C Trace Context (traceparent/tracestate) wire form, carried
// in-process via context.Context and across HTTP boundaries via
// headers. IDs are derived, not random: in simulation every visit's
// trace ID is a pure function of (seed, crawl, OS, URL), so two
// identically-seeded fleet runs emit identical trace identities and a
// traced crawl stays byte-reproducible.

import (
	"context"
	"net/http"
	"strings"
)

// TraceparentHeader and TracestateHeader are the W3C Trace Context
// header names (HTTP header lookup is case-insensitive).
const (
	TraceparentHeader = "traceparent"
	TracestateHeader  = "tracestate"
)

// TraceID is a 128-bit trace identity, rendered as 32 lowercase hex
// digits. The all-zero value is invalid per W3C Trace Context.
type TraceID [16]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (id TraceID) String() string { return string(appendHex(nil, id[:])) }

// SpanID is a 64-bit span identity, rendered as 16 lowercase hex
// digits. The all-zero value is invalid per W3C Trace Context.
type SpanID [8]byte

// IsZero reports whether the span ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the span ID as 16 lowercase hex digits.
func (id SpanID) String() string { return string(appendHex(nil, id[:])) }

// ParseTraceID parses 32 lowercase hex digits; the all-zero ID is
// rejected.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !decodeHex(id[:], s) || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID parses 16 lowercase hex digits; the all-zero ID is
// rejected.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 || !decodeHex(id[:], s) || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

func appendHex(b, src []byte) []byte {
	for _, c := range src {
		b = append(b, hexDigits[c>>4], hexDigits[c&0xF])
	}
	return b
}

func decodeHex(dst []byte, s string) bool {
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false // uppercase is invalid in traceparent per W3C
}

// SpanContext is the propagated identity of one span: the trace it
// belongs to, its own span ID, and the pass-through tracestate value
// (vendor data we never interpret, only forward).
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	State   string
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool {
	return !sc.TraceID.IsZero() && !sc.SpanID.IsZero()
}

// Traceparent renders the context in W3C wire form:
// 00-<32 hex trace>-<16 hex span>-01 (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = appendHex(b, sc.TraceID[:])
	b = append(b, '-')
	b = appendHex(b, sc.SpanID[:])
	b = append(b, '-', '0', '1')
	return string(b)
}

// ParseTraceparent parses a W3C traceparent value. Version ff and
// all-zero IDs are rejected; versions above 00 are accepted if their
// first four fields are well-formed (the spec's forward-compatibility
// rule). Returns ok=false for anything malformed — callers treat that
// as "no incoming context" and start a root trace.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) < 55 {
		return SpanContext{}, false
	}
	ver := s[:2]
	if _, ok := hexVal(ver[0]); !ok {
		return SpanContext{}, false
	}
	if _, ok := hexVal(ver[1]); !ok {
		return SpanContext{}, false
	}
	if ver == "ff" {
		return SpanContext{}, false
	}
	if ver == "00" && len(s) != 55 {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	var ok bool
	if sc.TraceID, ok = ParseTraceID(s[3:35]); !ok {
		return SpanContext{}, false
	}
	if sc.SpanID, ok = ParseSpanID(s[36:52]); !ok {
		return SpanContext{}, false
	}
	if _, ok := hexVal(s[53]); !ok {
		return SpanContext{}, false
	}
	if _, ok := hexVal(s[54]); !ok {
		return SpanContext{}, false
	}
	return sc, true
}

// spanCtxKey is the context.Context key for the active SpanContext.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc as the active span.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the active span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// InjectTraceContext writes the active span context from ctx into h as
// traceparent (and tracestate when carried). A context without a valid
// span leaves h untouched, so uninstrumented calls stay header-free.
func InjectTraceContext(ctx context.Context, h http.Header) {
	sc, ok := SpanFromContext(ctx)
	if !ok {
		return
	}
	h.Set(TraceparentHeader, sc.Traceparent())
	if sc.State != "" {
		h.Set(TracestateHeader, sc.State)
	}
}

// ExtractTraceContext reads the W3C trace context from request
// headers. Malformed or absent traceparent yields ok=false: the
// receiver starts a root trace rather than fabricating parent links.
func ExtractTraceContext(h http.Header) (SpanContext, bool) {
	sc, ok := ParseTraceparent(strings.TrimSpace(h.Get(TraceparentHeader)))
	if !ok {
		return SpanContext{}, false
	}
	sc.State = h.Get(TracestateHeader)
	return sc, true
}

// FNV-1a 64-bit constants — the same pure-hash family the simulator
// uses for deterministic worlds, so trace identity needs no randomness.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Terminate each field so ("ab","c") and ("a","bc") hash apart.
	h ^= 0x1f
	h *= fnvPrime64
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v >> (8 * i) & 0xff
		h *= fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so trace
// IDs derived from adjacent inputs do not share prefixes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DeriveTraceID deterministically derives a 128-bit trace ID from the
// simulation seed and identity parts (crawl, OS, URL for visits; lease
// or campaign identity for control-plane traces). The same inputs
// always produce the same ID, which is what keeps identically-seeded
// fleet runs trace-identical. The result is never the invalid all-zero
// ID.
func DeriveTraceID(seed uint64, parts ...string) TraceID {
	h := fnvUint64(fnvOffset64, seed)
	for _, p := range parts {
		h = fnvString(h, p)
	}
	hi, lo := mix64(h), mix64(h^0x9e3779b97f4a7c15)
	var id TraceID
	putUint64(id[:8], hi)
	putUint64(id[8:], lo)
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// DeriveSpanID deterministically derives a span ID within a trace from
// a role name ("visit", "lease/<id>", "ingest", ...). Distinct names
// yield distinct spans of the same trace; the result is never the
// invalid all-zero ID.
func DeriveSpanID(trace TraceID, name string) SpanID {
	h := fnvUint64(fnvOffset64, readUint64(trace[:8]))
	h = fnvUint64(h, readUint64(trace[8:]))
	h = fnvString(h, name)
	var id SpanID
	putUint64(id[:], mix64(h))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func readUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
