package telemetry

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	trace := DeriveTraceID(20210603, "fleet", "top100k-2020")
	span := DeriveSpanID(trace, "campaign")
	sc := SpanContext{TraceID: trace, SpanID: span}
	header := sc.Traceparent()
	if len(header) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", header, len(header))
	}
	if header != strings.ToLower(header) {
		t.Fatalf("traceparent %q is not lowercase", header)
	}
	if !strings.HasPrefix(header, "00-") || !strings.HasSuffix(header, "-01") {
		t.Fatalf("traceparent %q missing version/flags framing", header)
	}
	back, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("own traceparent %q does not parse", header)
	}
	if back.TraceID != trace || back.SpanID != span {
		t.Fatalf("round trip changed identity: %+v vs %+v", back, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("W3C spec example rejected: %q", valid)
	}
	// Forward compatibility: a future version with extra fields parses
	// as long as the version-00 prefix is well-formed.
	if _, ok := ParseTraceparent(strings.Replace(valid, "00-", "42-", 1) + "-extrafield"); !ok {
		t.Error("future version with extra field rejected")
	}
	bad := []string{
		"",
		"00",
		valid[:54],                              // truncated
		valid + "x",                             // version 00 with trailing junk
		strings.Replace(valid, "00-", "ff-", 1), // version ff is forbidden
		strings.ToUpper(valid),                  // uppercase hex
		strings.Replace(valid, "-00f067", "_00f067", 1),           // wrong separator
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted invalid traceparent %q", s)
		}
	}
}

func TestParseIDsRejectInvalid(t *testing.T) {
	if _, ok := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736"); !ok {
		t.Error("valid trace ID rejected")
	}
	for _, s := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("A", 32), strings.Repeat("g", 32)} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("accepted invalid trace ID %q", s)
		}
	}
	if _, ok := ParseSpanID("00f067aa0ba902b7"); !ok {
		t.Error("valid span ID rejected")
	}
	for _, s := range []string{"", "00f0", strings.Repeat("0", 16), strings.Repeat("F", 16)} {
		if _, ok := ParseSpanID(s); ok {
			t.Errorf("accepted invalid span ID %q", s)
		}
	}
}

// TestDeriveDeterminism pins the contract the fleet's cross-process
// assembly depends on: identically-seeded derivations must collide
// exactly, differently-seeded ones must not, and no derivation may
// produce the (invalid) all-zero IDs.
func TestDeriveDeterminism(t *testing.T) {
	a := DeriveTraceID(7, "top100k-2020", "Windows", "https://ebay.com/")
	b := DeriveTraceID(7, "top100k-2020", "Windows", "https://ebay.com/")
	if a != b {
		t.Fatal("identical inputs derived different trace IDs")
	}
	if a.IsZero() {
		t.Fatal("derived trace ID is zero")
	}
	if DeriveTraceID(8, "top100k-2020", "Windows", "https://ebay.com/") == a {
		t.Error("seed change did not change the trace ID")
	}
	if DeriveTraceID(7, "top100k-2020", "Windows", "https://ebay.com/x") == a {
		t.Error("URL change did not change the trace ID")
	}
	// Field boundaries matter: ("ab","c") and ("a","bc") must differ.
	if DeriveTraceID(7, "ab", "c") == DeriveTraceID(7, "a", "bc") {
		t.Error("field terminator does not separate parts")
	}
	s1 := DeriveSpanID(a, "visit")
	if s1 != DeriveSpanID(a, "visit") {
		t.Fatal("identical inputs derived different span IDs")
	}
	if s1.IsZero() {
		t.Fatal("derived span ID is zero")
	}
	if DeriveSpanID(a, "upload") == s1 {
		t.Error("span name change did not change the span ID")
	}
}

func TestContextAndHeaderPropagation(t *testing.T) {
	trace := DeriveTraceID(1, "x")
	sc := SpanContext{TraceID: trace, SpanID: DeriveSpanID(trace, "s"), State: "vendor=1"}

	ctx := ContextWithSpan(context.Background(), sc)
	got, ok := SpanFromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("context round trip: %+v ok=%v", got, ok)
	}
	if _, ok := SpanFromContext(context.Background()); ok {
		t.Fatal("empty context reports a span")
	}

	h := http.Header{}
	InjectTraceContext(ctx, h)
	if h.Get(TraceparentHeader) != sc.Traceparent() {
		t.Fatalf("injected traceparent %q", h.Get(TraceparentHeader))
	}
	if h.Get(TracestateHeader) != "vendor=1" {
		t.Fatalf("injected tracestate %q", h.Get(TracestateHeader))
	}
	back, ok := ExtractTraceContext(h)
	if !ok || back.TraceID != sc.TraceID || back.SpanID != sc.SpanID || back.State != "vendor=1" {
		t.Fatalf("extract round trip: %+v ok=%v", back, ok)
	}

	// A context without a valid span injects nothing.
	empty := http.Header{}
	InjectTraceContext(context.Background(), empty)
	if len(empty) != 0 {
		t.Fatalf("empty context injected headers: %v", empty)
	}
	// A stripped or mangled header extracts as absent, never as a
	// malformed span.
	for _, v := range []string{"", "garbage", "00-zz-zz-01"} {
		h := http.Header{}
		if v != "" {
			h.Set(TraceparentHeader, v)
		}
		if _, ok := ExtractTraceContext(h); ok {
			t.Errorf("extracted a span from %q", v)
		}
	}
}
