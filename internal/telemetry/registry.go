// Package telemetry is the unified observability layer of the system:
// a lock-cheap process-wide metrics registry (counters, gauges, and
// fixed log-scale histograms, all atomic on the hot path) and a
// per-visit trace pipeline (bounded JSONL span sink plus the reader and
// aggregation behind the knocktrace CLI).
//
// The registry answers "what has this process done so far" — every
// subsystem (crawler, pipeline, store, serve) registers named, labeled
// metrics and the whole thing snapshots to JSON. Traces answer "what
// happened during this one visit and where did the time go" — each page
// visit (crawled or ingested) emits one JSONL record carrying its spans
// (visit → netlog → detect → infer → classify → commit) with wall time,
// item counts, and outcome. Both views are fed from the same measured
// durations, so per-stage busy time aggregated from a trace file agrees
// exactly with the registry's counters for the same work.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed log-scale bucket count: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Bucket 0 holds zeros. 65 buckets cover the whole uint64 range, so a
// histogram never resizes and Observe is three atomic adds.
const histBuckets = 65

// Histogram accumulates a distribution in fixed log-scale (power of
// two) buckets. Durations observe as nanoseconds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
	// exemplars holds the most recent traced observation per bucket —
	// a pointer swap beside the three atomic adds, only on observations
	// that carry a trace ID. Surfaced as OpenMetrics exemplars.
	exemplars [histBuckets]atomic.Pointer[exemplar]
}

// exemplar pairs one observed value with the trace that produced it.
type exemplar struct {
	traceID string
	value   uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records one duration sample in nanoseconds; negative
// durations clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// tags the sample's bucket with it as the bucket's most recent
// exemplar. An empty traceID is exactly Observe.
func (h *Histogram) ObserveExemplar(v uint64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.exemplars[bits.Len64(v)].Store(&exemplar{traceID: traceID, value: v})
	}
}

// ObserveDurationExemplar records one duration sample tagged with the
// trace that produced it; negative durations clamp to zero.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	if d < 0 {
		d = 0
	}
	h.ObserveExemplar(uint64(d), traceID)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot renders the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			le := uint64(0)
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			b := Bucket{Le: le, N: n}
			if ex := h.exemplars[i].Load(); ex != nil {
				b.ExemplarTraceID = ex.traceID
				b.ExemplarValue = ex.value
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket: N samples ≤ Le (and above
// the previous bucket's bound).
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
	// ExemplarTraceID/ExemplarValue carry the bucket's most recent
	// traced observation (an OpenMetrics exemplar), when any.
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
	ExemplarValue   uint64 `json:"exemplar_value,omitempty"`
}

// HistogramSnapshot is the wire form of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile returns the q-quantile (q in [0, 1]) of the observed
// distribution, linearly interpolated within the log-scale bucket where
// the cumulative count crosses q. A bucket with inclusive upper bound
// le spans (le>>1, le] — le>>1 is the previous power-of-two bound — and
// the interpolated value assumes samples spread evenly across that
// span. A cumulative count landing exactly on a bucket's last sample
// returns the bucket's upper bound exactly (so Quantile(1) is the top
// occupied bucket's bound, as before), the zero bucket always returns
// 0, and the result is monotone non-decreasing in q.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := math.Ceil(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	if max := float64(s.Count); target > max {
		target = max
	}
	var seen float64
	for _, b := range s.Buckets {
		n := float64(b.N)
		if seen+n < target {
			seen += n
			continue
		}
		if b.Le == 0 {
			return 0
		}
		lo := b.Le >> 1
		frac := (target - seen) / n
		return lo + uint64(math.Round(float64(b.Le-lo)*frac))
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// Merge returns the union of two snapshots of the same bucket layout:
// counts and sums add, buckets combine by bound. Serving code uses it
// to aggregate one endpoint's per-cache-outcome latency series into a
// single distribution.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < o.Buckets[j].Le):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Le < s.Buckets[i].Le:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			merged := Bucket{Le: s.Buckets[i].Le, N: s.Buckets[i].N + o.Buckets[j].N}
			// Exemplars don't merge numerically: keep one of the two
			// recents (s's when it has one).
			merged.ExemplarTraceID, merged.ExemplarValue = s.Buckets[i].ExemplarTraceID, s.Buckets[i].ExemplarValue
			if merged.ExemplarTraceID == "" {
				merged.ExemplarTraceID, merged.ExemplarValue = o.Buckets[j].ExemplarTraceID, o.Buckets[j].ExemplarValue
			}
			out.Buckets = append(out.Buckets, merged)
			i, j = i+1, j+1
		}
	}
	return out
}

// metricKey canonicalizes a metric name plus label pairs into the
// registry's map key. Labels render sorted by key, so call-site order
// does not mint distinct metrics.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// splitKey decomposes a registry key back into name and label map
// (nil when unlabeled).
func splitKey(key string) (name string, labels map[string]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	name = key[:i]
	labels = map[string]string{}
	for _, pair := range strings.Split(strings.TrimSuffix(key[i+1:], "}"), ",") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			labels[k] = v
		}
	}
	return name, labels
}

// Registry is a concurrent-safe collection of named, labeled metrics.
// Metric handles are created on first use and permanent; the hot path
// (a handle's Add/Inc/Observe) is purely atomic, and re-resolving a
// handle by name costs one read-locked map lookup.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the binaries publish
// (knockserved's debug endpoint exports it via expvar).
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name and label pairs,
// creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge registered under name and label pairs,
// creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := metricKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram registered under name and label
// pairs, creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	key := metricKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = &Histogram{}
		r.hists[key] = h
	}
	return h
}

// CounterValue reads a counter without creating it; absent counters
// read zero.
func (r *Registry) CounterValue(name string, labels ...string) uint64 {
	key := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// CounterLabels collects every counter of one single-label family,
// keyed by the value of labelKey. Counters of the family that lack the
// label are skipped; the result is nil when the family is empty.
func (r *Registry) CounterLabels(name, labelKey string) map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out map[string]uint64
	for key, c := range r.counters {
		n, labels := splitKey(key)
		if n != name {
			continue
		}
		lv, ok := labels[labelKey]
		if !ok {
			continue
		}
		if out == nil {
			out = map[string]uint64{}
		}
		out[lv] += c.Value()
	}
	return out
}

// LabeledHistogram is one series of a histogram family: its decoded
// label set plus the snapshot at collection time.
type LabeledHistogram struct {
	Labels map[string]string
	Hist   HistogramSnapshot
}

// HistogramFamily snapshots every histogram registered under name,
// with labels decoded from the canonical key. The result is nil when
// the family is empty; order is unspecified.
func (r *Registry) HistogramFamily(name string) []LabeledHistogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []LabeledHistogram
	for key, h := range r.hists {
		n, labels := splitKey(key)
		if n != name {
			continue
		}
		out = append(out, LabeledHistogram{Labels: labels, Hist: h.Snapshot()})
	}
	return out
}

// Snapshot is the wire form of a whole registry: every metric under
// its canonical key (name, then sorted k=v labels in braces).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values. Individual metric
// reads are atomic; the snapshot as a whole is not a consistent cut
// across metrics (writers keep writing), which is the usual metrics
// contract.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
