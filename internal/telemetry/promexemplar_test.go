package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusExemplarRoundTrip pins the exemplar path end to end:
// an ObserveExemplar-tagged observation renders as an OpenMetrics
// ` # {trace_id="..."} value` suffix on its bucket line, and the strict
// parser recovers the label set and value from that exact output.
func TestPrometheusExemplarRoundTrip(t *testing.T) {
	reg := NewRegistry()
	trace := DeriveTraceID(9, "exemplar").String()
	h := reg.Histogram("serve_query_ns", "endpoint", "domains")
	h.ObserveExemplar(1500, trace)
	h.Observe(1600) // untraced observation in the same bucket keeps the exemplar

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `# {trace_id="`+trace+`"} 1500`) {
		t.Fatalf("exposition lacks the exemplar suffix:\n%s", text)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", text)
	}

	doc, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	fam := doc.Families["serve_query_ns"]
	if fam == nil {
		t.Fatal("serve_query_ns family missing")
	}
	var found *PromExemplar
	for _, s := range fam.Series {
		if s.Exemplar != nil {
			if found != nil {
				t.Fatal("exemplar appeared on more than one bucket")
			}
			found = s.Exemplar
			if !strings.HasSuffix(s.Name, "_bucket") {
				t.Fatalf("exemplar on non-bucket series %s", s.Name)
			}
		}
	}
	if found == nil {
		t.Fatal("parser dropped the exemplar")
	}
	if found.Labels["trace_id"] != trace {
		t.Fatalf("exemplar trace_id = %q, want %q", found.Labels["trace_id"], trace)
	}
	if found.Value != 1500 {
		t.Fatalf("exemplar value = %v, want 1500", found.Value)
	}
}

// TestPrometheusParseExemplarLines exercises the parser against
// hand-written exemplar forms beyond what our own writer emits.
func TestPrometheusParseExemplarLines(t *testing.T) {
	ok := []string{
		// Counter exemplar with a timestamp (OpenMetrics allows both).
		"# TYPE a counter\na 5 # {trace_id=\"4bf92f35\"} 1 1700000000\n",
		// Exemplar label value containing an escaped newline and quote.
		"# TYPE a counter\na 5 # {note=\"line\\nbreak \\\"q\\\"\"} 0.5\n",
		// Empty exemplar label set.
		"# TYPE a counter\na 5 # {} 2\n",
		// Histogram bucket exemplar.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1 # {trace_id=\"ab\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for _, in := range ok {
		if _, err := ParsePrometheus(strings.NewReader(in)); err != nil {
			t.Errorf("rejected valid exemplar input %q: %v", in, err)
		}
	}
	bad := []string{
		// Exemplar on a gauge.
		"# TYPE a gauge\na 5 # {trace_id=\"ab\"} 1\n",
		// Exemplar on a histogram _count (buckets only).
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1 # {trace_id=\"ab\"} 1\n",
		// Missing label set after #.
		"# TYPE a counter\na 5 # 1\n",
		// Missing exemplar value.
		"# TYPE a counter\na 5 # {trace_id=\"ab\"}\n",
		// Garbage exemplar value.
		"# TYPE a counter\na 5 # {trace_id=\"ab\"} xyz\n",
		// Garbage exemplar timestamp.
		"# TYPE a counter\na 5 # {trace_id=\"ab\"} 1 ts\n",
	}
	for _, in := range bad {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("accepted invalid exemplar input %q", in)
		}
	}
}

func TestPrometheusEOFStrictness(t *testing.T) {
	if _, err := ParsePrometheus(strings.NewReader("# TYPE a counter\na 1\n# EOF\n")); err != nil {
		t.Fatalf("terminated exposition rejected: %v", err)
	}
	// Blank lines after # EOF are tolerated; content is not.
	if _, err := ParsePrometheus(strings.NewReader("# TYPE a counter\na 1\n# EOF\n\n")); err != nil {
		t.Fatalf("blank line after # EOF rejected: %v", err)
	}
	for _, in := range []string{
		"# TYPE a counter\na 1\n# EOF\nb 2\n",
		"# TYPE a counter\na 1\n# EOF\n# HELP late comment\n",
		"# EOF\n# TYPE a counter\na 1\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("accepted content after # EOF: %q", in)
		}
	}
}

// TestPrometheusEscapedLabelValues pins that escaped newlines,
// backslashes, and quotes in label values survive a write/parse round
// trip — trace IDs never need this, but site keys can.
func TestPrometheusEscapedLabelValues(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("weird", "key", "line\nbreak\\\"q").Add(3)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `key="line\nbreak\\\"q"`) {
		t.Fatalf("label value not escaped:\n%s", b.String())
	}
	doc, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	s := doc.Series("weird", "key", "line\nbreak\\\"q")
	if s == nil {
		t.Fatalf("escaped label value did not round trip:\n%s", b.String())
	}
	if s.Value != 3 {
		t.Fatalf("value = %v, want 3", s.Value)
	}
	// A raw (unescaped) newline inside a label value is a parse error,
	// not a silent truncation.
	if _, err := ParsePrometheus(strings.NewReader("# TYPE a counter\na{k=\"x\n\"} 1\n")); err == nil {
		t.Error("accepted raw newline inside a label value")
	}
}
