// Command promcheck validates a Prometheus text exposition stream on
// stdin with the repo's strict parser: it fails on duplicate series,
// unsorted families or series, and malformed histogram blocks. CI
// pipes a live /metrics scrape through it.
//
// Usage:
//
//	curl -fsS http://127.0.0.1:6060/metrics | go run ./internal/telemetry/promcheck
package main

import (
	"fmt"
	"os"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func main() {
	doc, err := telemetry.ParsePrometheus(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}
	series := 0
	for _, fam := range doc.Families {
		series += len(fam.Series)
	}
	if len(doc.Names) == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: empty exposition stream")
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d families, %d series OK\n", len(doc.Names), series)
}
