package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "path", "/v1/locals")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same handle.
	if r.Counter("requests_total", "path", "/v1/locals") != c {
		t.Fatal("re-resolving a counter minted a new handle")
	}
	// Label order must not mint distinct metrics.
	a := r.Counter("multi", "b", "2", "a", "1")
	b := r.Counter("multi", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order minted distinct counters")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestCounterValueAndLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs", "path", "/a").Add(2)
	r.Counter("reqs", "path", "/b").Add(3)
	r.Counter("other").Inc()
	if v := r.CounterValue("reqs", "path", "/a"); v != 2 {
		t.Fatalf("CounterValue = %d, want 2", v)
	}
	if v := r.CounterValue("absent"); v != 0 {
		t.Fatalf("absent counter = %d, want 0", v)
	}
	got := r.CounterLabels("reqs", "path")
	if len(got) != 2 || got["/a"] != 2 || got["/b"] != 3 {
		t.Fatalf("CounterLabels = %+v", got)
	}
	if r.CounterLabels("nosuch", "path") != nil {
		t.Fatal("empty family must return nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket le=0
	h.Observe(1)    // le=1
	h.Observe(2)    // le=3
	h.Observe(3)    // le=3
	h.Observe(1000) // le=1023
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1006 {
		t.Fatalf("count=%d sum=%d, want 5/1006", s.Count, s.Sum)
	}
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want %d", b.Le, b.N, want[b.Le])
		}
	}
	// The 3rd of 5 samples lands halfway through the le=3 bucket
	// (span (1,3], 2 samples): 1 + 0.5*2 = 2 under interpolation.
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %d, want 2", q)
	}
	if q := s.Quantile(1); q != 1023 {
		t.Fatalf("p100 = %d, want 1023", q)
	}
	var empty Histogram
	if q := empty.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
	var neg Histogram
	neg.ObserveDuration(-time.Second)
	if s := neg.Snapshot(); s.Sum != 0 || s.Count != 1 {
		t.Fatalf("negative duration must clamp to zero: %+v", s)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "os", "Windows").Add(2)
	r.Gauge("g").Set(-4)
	r.Histogram("h_ns").Observe(5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"c_total{os=Windows}":2`, `"g":-4`, `"h_ns":{"count":1,"sum":5`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("snapshot JSON %s missing %s", raw, want)
		}
	}
	// Empty registry snapshots to the empty object: every section is
	// omitempty.
	raw, err = json.Marshal(NewRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "{}" {
		t.Fatalf("empty registry snapshot = %s, want {}", raw)
	}
}

// TestRegistryConcurrent hammers creation, writes, and snapshots from
// many goroutines; with -race this is the registry's data-race check.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 1000
	names := []string{"a_total", "b_total", "c_total"}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter(names[i%len(names)], "w", "shared").Inc()
				r.Gauge("inflight").Add(1)
				r.Histogram("lat_ns", "stage", names[i%len(names)]).Observe(uint64(i))
				r.Gauge("inflight").Add(-1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
				r.CounterLabels("a_total", "w")
			}
		}
	}()
	wg.Wait()
	close(done)
	var total uint64
	for _, n := range names {
		total += r.CounterValue(n, "w", "shared")
	}
	if want := uint64(writers * perWriter); total != want {
		t.Fatalf("counted %d increments, want %d", total, want)
	}
	if g := r.Gauge("inflight").Value(); g != 0 {
		t.Fatalf("inflight gauge = %d, want 0 after drain", g)
	}
}

// TestQuantileInterpolation pins the within-bucket linear
// interpolation: quantiles are read off the bucket's (le>>1, le] span
// proportionally to how far into the bucket the target sample falls,
// not snapped to the upper bound.
func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 4 samples, all in the le=7 bucket (span (3, 7]).
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	s := h.Snapshot()
	// Targets 1..4 of 4 interpolate to 3 + {1,2,3,4}/4 * 4 = 4,5,6,7.
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0.25, 4}, {0.5, 5}, {0.75, 6}, {1, 7}, {0, 4}} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

// TestQuantileBucketBoundary pins exact-boundary behavior: a
// cumulative count landing on a bucket's last sample returns that
// bucket's inclusive upper bound exactly, and the first sample of the
// next bucket moves strictly into the next span.
func TestQuantileBucketBoundary(t *testing.T) {
	var h Histogram
	h.Observe(1) // le=1
	h.Observe(3) // le=3
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want the le=1 bound exactly", got)
	}
	if got := s.Quantile(1); got != 3 {
		t.Errorf("p100 = %d, want the le=3 bound exactly", got)
	}
	// q beyond 1 clamps to the last sample rather than overshooting.
	if got := s.Quantile(1.5); got != 3 {
		t.Errorf("Quantile(1.5) = %d, want 3", got)
	}
}

// TestQuantileMonotone sweeps a mixed histogram and asserts the
// interpolated quantile never decreases as q grows.
func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 0, 1, 2, 3, 5, 9, 17, 90, 1000, 70000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	var prev uint64
	for q := 0.0; q <= 1.0; q += 0.001 {
		cur := s.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d", q, cur, prev)
		}
		prev = cur
	}
}

// TestHistogramSnapshotMerge merges two snapshots with overlapping and
// disjoint buckets and checks the union quantiles come out of the
// combined distribution.
func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(2)
	b.Observe(2)
	b.Observe(1000)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 || m.Sum != 1005 {
		t.Fatalf("merged count=%d sum=%d, want 4/1005", m.Count, m.Sum)
	}
	want := map[uint64]uint64{1: 1, 3: 2, 1023: 1}
	if len(m.Buckets) != len(want) {
		t.Fatalf("merged buckets = %+v, want %v", m.Buckets, want)
	}
	var prev uint64
	for _, bk := range m.Buckets {
		if bk.Le < prev {
			t.Fatalf("merged buckets out of order: %+v", m.Buckets)
		}
		prev = bk.Le
		if want[bk.Le] != bk.N {
			t.Fatalf("merged bucket le=%d n=%d, want %d", bk.Le, bk.N, want[bk.Le])
		}
	}
	if empty := (HistogramSnapshot{}).Merge(a.Snapshot()); empty.Count != 2 {
		t.Fatalf("merge into empty lost samples: %+v", empty)
	}
}

func TestHistogramFamily(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_ns", "endpoint", "site", "cache", "hit").Observe(3)
	r.Histogram("lat_ns", "endpoint", "site", "cache", "miss").Observe(9)
	r.Histogram("lat_ns", "endpoint", "summary", "cache", "hit").Observe(5)
	r.Histogram("other_ns").Observe(1)
	fam := r.HistogramFamily("lat_ns")
	if len(fam) != 3 {
		t.Fatalf("family has %d series, want 3: %+v", len(fam), fam)
	}
	var total uint64
	for _, s := range fam {
		if s.Labels["endpoint"] == "" || s.Labels["cache"] == "" {
			t.Fatalf("series lost labels: %+v", s)
		}
		total += s.Hist.Count
	}
	if total != 3 {
		t.Fatalf("family observations = %d, want 3", total)
	}
	if r.HistogramFamily("absent") != nil {
		t.Fatal("absent family must return nil")
	}
}

// TestRegisterBuildInfo checks the standard build-identity gauge: one
// series, constant 1, carrying version and goversion labels that also
// survive the Prometheus exposition.
func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	version := RegisterBuildInfo(r)
	if version == "" {
		t.Fatal("RegisterBuildInfo returned an empty version")
	}
	snap := r.Snapshot()
	found := false
	for k, v := range snap.Gauges {
		if !strings.HasPrefix(k, MetricBuildInfo+"{") {
			continue
		}
		found = true
		if v != 1 {
			t.Fatalf("%s = %d, want 1", k, v)
		}
		if !strings.Contains(k, "goversion=go") || !strings.Contains(k, "version="+version) {
			t.Fatalf("build info labels missing from %s", k)
		}
	}
	if !found {
		t.Fatal("knock_build_info gauge not registered")
	}
	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "# TYPE knock_build_info gauge") ||
		!strings.Contains(prom.String(), `knock_build_info{goversion="`) {
		t.Fatalf("Prometheus exposition lost build info:\n%s", prom.String())
	}
}
