package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "path", "/v1/locals")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same handle.
	if r.Counter("requests_total", "path", "/v1/locals") != c {
		t.Fatal("re-resolving a counter minted a new handle")
	}
	// Label order must not mint distinct metrics.
	a := r.Counter("multi", "b", "2", "a", "1")
	b := r.Counter("multi", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order minted distinct counters")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestCounterValueAndLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs", "path", "/a").Add(2)
	r.Counter("reqs", "path", "/b").Add(3)
	r.Counter("other").Inc()
	if v := r.CounterValue("reqs", "path", "/a"); v != 2 {
		t.Fatalf("CounterValue = %d, want 2", v)
	}
	if v := r.CounterValue("absent"); v != 0 {
		t.Fatalf("absent counter = %d, want 0", v)
	}
	got := r.CounterLabels("reqs", "path")
	if len(got) != 2 || got["/a"] != 2 || got["/b"] != 3 {
		t.Fatalf("CounterLabels = %+v", got)
	}
	if r.CounterLabels("nosuch", "path") != nil {
		t.Fatal("empty family must return nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket le=0
	h.Observe(1)    // le=1
	h.Observe(2)    // le=3
	h.Observe(3)    // le=3
	h.Observe(1000) // le=1023
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1006 {
		t.Fatalf("count=%d sum=%d, want 5/1006", s.Count, s.Sum)
	}
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want %d", b.Le, b.N, want[b.Le])
		}
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(1); q != 1023 {
		t.Fatalf("p100 = %d, want 1023", q)
	}
	var empty Histogram
	if q := empty.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
	var neg Histogram
	neg.ObserveDuration(-time.Second)
	if s := neg.Snapshot(); s.Sum != 0 || s.Count != 1 {
		t.Fatalf("negative duration must clamp to zero: %+v", s)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "os", "Windows").Add(2)
	r.Gauge("g").Set(-4)
	r.Histogram("h_ns").Observe(5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"c_total{os=Windows}":2`, `"g":-4`, `"h_ns":{"count":1,"sum":5`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("snapshot JSON %s missing %s", raw, want)
		}
	}
	// Empty registry snapshots to the empty object: every section is
	// omitempty.
	raw, err = json.Marshal(NewRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "{}" {
		t.Fatalf("empty registry snapshot = %s, want {}", raw)
	}
}

// TestRegistryConcurrent hammers creation, writes, and snapshots from
// many goroutines; with -race this is the registry's data-race check.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 1000
	names := []string{"a_total", "b_total", "c_total"}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter(names[i%len(names)], "w", "shared").Inc()
				r.Gauge("inflight").Add(1)
				r.Histogram("lat_ns", "stage", names[i%len(names)]).Observe(uint64(i))
				r.Gauge("inflight").Add(-1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
				r.CounterLabels("a_total", "w")
			}
		}
	}()
	wg.Wait()
	close(done)
	var total uint64
	for _, n := range names {
		total += r.CounterValue(n, "w", "shared")
	}
	if want := uint64(writers * perWriter); total != want {
		t.Fatalf("counted %d increments, want %d", total, want)
	}
	if g := r.Gauge("inflight").Value(); g != 0 {
		t.Fatalf("inflight gauge = %d, want 0 after drain", g)
	}
}
