package telemetry

// Minimal, strict parser for the Prometheus text exposition format —
// the round-trip check for WritePrometheus and the validator behind
// the CI scrape smoke (internal/telemetry/promcheck). Strictness is
// the point: the renderer promises deterministic, sorted, duplicate-
// free output, so the parser fails on anything out of order rather
// than accepting whatever a lenient scraper would.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSeries is one sample line of an exposition stream.
type PromSeries struct {
	// Name is the full series name (for histograms, including the
	// _bucket/_sum/_count suffix).
	Name   string
	Labels map[string]string
	Value  float64
	// Raw preserves the exact value text, so integer series (every
	// series the registry renders) can be compared exactly even beyond
	// float64 precision.
	Raw string
	// Exemplar is the series' OpenMetrics exemplar, when one followed
	// the sample (`... # {trace_id="..."} value`).
	Exemplar *PromExemplar
}

// PromExemplar is one OpenMetrics exemplar: its label set (for the
// registry, a single trace_id) and the exemplified observation value.
type PromExemplar struct {
	Labels map[string]string
	Value  float64
	Raw    string
}

// PromFamily is one metric family: its declared type and every sample
// series, in stream order.
type PromFamily struct {
	Name   string
	Type   string
	Series []PromSeries
}

// PromDoc is a parsed exposition stream.
type PromDoc struct {
	// Families is keyed by family name; Names preserves stream order.
	Families map[string]*PromFamily
	Names    []string
}

// Series returns the sample with the given full name and exact label
// pairs, or nil.
func (d *PromDoc) Series(name string, labels ...string) *PromSeries {
	if len(labels)%2 != 0 {
		return nil
	}
	want := map[string]string{}
	for i := 0; i < len(labels); i += 2 {
		want[labels[i]] = labels[i+1]
	}
	fam := d.Families[promFamilyName(d, name)]
	if fam == nil {
		return nil
	}
	for i := range fam.Series {
		s := &fam.Series[i]
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	return nil
}

// promFamilyName resolves a series name to its family: exact for
// counters and gauges, suffix-stripped for histogram children.
func promFamilyName(d *PromDoc, name string) string {
	if d.Families[name] != nil {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f := d.Families[base]; f != nil && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// histState tracks the strict per-instance ordering of one histogram
// family: every instance's buckets (le ascending, counts cumulative,
// +Inf last), then _sum, then _count equal to the +Inf bucket.
type histState struct {
	instance   string // canonical labels (minus le) of the open instance
	phase      int    // 0 none, 1 buckets, 2 sum seen, 3 count seen
	lastLe     float64
	cum        float64
	infCount   float64
	lastClosed string // canonical labels of the last completed instance
}

// ParsePrometheus parses an exposition stream, enforcing the
// renderer's ordering contract: a # TYPE line precedes its series,
// family names appear in sorted order, series within a family are
// sorted by canonical label string with no duplicates, and histogram
// instances render complete cumulative bucket/sum/count blocks.
func ParsePrometheus(r io.Reader) (*PromDoc, error) {
	doc := &PromDoc{Families: map[string]*PromFamily{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var (
		cur      *PromFamily
		lastKey  string // last counter/gauge canonical label string
		hist     histState
		lineNo   int
		lastFam  string
		eofSeen  bool
		seenOnce = map[string]bool{}
	)
	closeHistogram := func() error {
		if cur != nil && cur.Type == "histogram" && hist.phase != 0 && hist.phase != 3 {
			return fmt.Errorf("histogram %s instance %s truncated (missing _sum/_count)", cur.Name, hist.instance)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if eofSeen {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				// OpenMetrics end-of-stream marker: nothing may follow.
				eofSeen = true
				continue
			}
			rest, ok := strings.CutPrefix(line, "# TYPE ")
			if !ok {
				continue // HELP and other comments
			}
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: unsupported metric type %q", lineNo, typ)
			}
			if seenOnce[name] {
				return nil, fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
			}
			if name <= lastFam && lastFam != "" {
				return nil, fmt.Errorf("line %d: family %q out of sorted order (after %q)", lineNo, name, lastFam)
			}
			if err := closeHistogram(); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			seenOnce[name] = true
			lastFam = name
			cur = &PromFamily{Name: name, Type: typ}
			doc.Families[name] = cur
			doc.Names = append(doc.Names, name)
			lastKey = ""
			hist = histState{}
			continue
		}
		name, labels, raw, ex, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		val, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q", lineNo, raw)
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: series %q before any TYPE line", lineNo, name)
		}
		// OpenMetrics permits exemplars on counters and histogram
		// buckets only.
		if ex != nil && (cur.Type == "gauge" || (cur.Type == "histogram" && name != cur.Name+"_bucket")) {
			return nil, fmt.Errorf("line %d: exemplar on %s series %q", lineNo, cur.Type, name)
		}
		switch cur.Type {
		case "counter", "gauge":
			if name != cur.Name {
				return nil, fmt.Errorf("line %d: series %q outside its family block (open family %q)", lineNo, name, cur.Name)
			}
			key := promCanonicalLabels(labels, "")
			if lastKey != "" || len(cur.Series) > 0 {
				if key == lastKey {
					return nil, fmt.Errorf("line %d: duplicate series %s%s", lineNo, name, key)
				}
				if key < lastKey {
					return nil, fmt.Errorf("line %d: series %s%s out of sorted order", lineNo, name, key)
				}
			}
			lastKey = key
		case "histogram":
			if err := promHistSample(cur, &hist, name, labels, val); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
		cur.Series = append(cur.Series, PromSeries{Name: name, Labels: labels, Value: val, Raw: raw, Exemplar: ex})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := closeHistogram(); err != nil {
		return nil, fmt.Errorf("line %d: %w", lineNo, err)
	}
	return doc, nil
}

// promHistSample advances one histogram family's strict instance state
// machine by one sample line.
func promHistSample(cur *PromFamily, h *histState, name string, labels map[string]string, val float64) error {
	inst := promCanonicalLabels(labels, "le")
	switch name {
	case cur.Name + "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("bucket of %s missing le label", cur.Name)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("bad le bound %q", le)
		}
		if h.phase == 0 || inst != h.instance {
			// A new instance opens: the previous one must be complete and
			// instances must arrive in sorted order.
			if h.phase != 0 && h.phase != 3 {
				return fmt.Errorf("histogram %s instance %s incomplete before %s", cur.Name, h.instance, inst)
			}
			if h.lastClosed != "" && inst <= h.lastClosed {
				return fmt.Errorf("histogram %s instance %s duplicate or out of sorted order", cur.Name, inst)
			}
			h.instance = inst
			h.phase = 1
			h.lastLe = math.Inf(-1)
			h.cum = 0
		} else if h.phase != 1 {
			return fmt.Errorf("histogram %s bucket after _sum for instance %s", cur.Name, inst)
		}
		if bound <= h.lastLe {
			return fmt.Errorf("histogram %s le %q out of ascending order", cur.Name, le)
		}
		if val < h.cum {
			return fmt.Errorf("histogram %s bucket counts not cumulative at le=%q", cur.Name, le)
		}
		h.lastLe = bound
		h.cum = val
		if math.IsInf(bound, 1) {
			h.infCount = val
		}
	case cur.Name + "_sum":
		if h.phase != 1 || inst != h.instance {
			return fmt.Errorf("histogram %s _sum without preceding buckets for %s", cur.Name, inst)
		}
		if !math.IsInf(h.lastLe, 1) {
			return fmt.Errorf("histogram %s instance %s missing +Inf bucket", cur.Name, inst)
		}
		h.phase = 2
	case cur.Name + "_count":
		if h.phase != 2 || inst != h.instance {
			return fmt.Errorf("histogram %s _count out of order for %s", cur.Name, inst)
		}
		if val != h.infCount {
			return fmt.Errorf("histogram %s _count %v disagrees with +Inf bucket %v", cur.Name, val, h.infCount)
		}
		h.phase = 3
		h.lastClosed = inst
	default:
		return fmt.Errorf("series %q outside its family block (open family %q)", name, cur.Name)
	}
	return nil
}

// promCanonicalLabels renders a label map as a canonical sorted k=v
// string, excluding one key (the histogram le bound).
func promCanonicalLabels(labels map[string]string, except string) string {
	if len(labels) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != except {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// parsePromSample parses one sample line: name, optional {labels}, the
// value text, and an optional trailing OpenMetrics exemplar
// (`# {labels} value`).
func parsePromSample(line string) (string, map[string]string, string, *PromExemplar, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", nil, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if name == "" {
		return "", nil, "", nil, fmt.Errorf("malformed sample %q", line)
	}
	var labels map[string]string
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		labels, rest, err = parsePromLabels(rest[1:])
		if err != nil {
			return "", nil, "", nil, err
		}
	}
	var ex *PromExemplar
	// The labels are consumed, so the first '#' left in the line opens
	// the exemplar.
	if j := strings.IndexByte(rest, '#'); j >= 0 {
		var err error
		ex, err = parsePromExemplar(strings.TrimLeft(rest[j+1:], " \t"))
		if err != nil {
			return "", nil, "", nil, err
		}
		rest = rest[:j]
	}
	raw := strings.TrimSpace(rest)
	if raw == "" || strings.ContainsAny(raw, " \t") {
		return "", nil, "", nil, fmt.Errorf("malformed sample value in %q", line)
	}
	return name, labels, raw, ex, nil
}

// parsePromExemplar parses `{labels} value [timestamp]` — the text
// after an exemplar's `#` separator.
func parsePromExemplar(s string) (*PromExemplar, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("malformed exemplar near %q (missing label set)", s)
	}
	labels, rest, err := parsePromLabels(s[1:])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return nil, fmt.Errorf("malformed exemplar value near %q", rest)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
	}
	return &PromExemplar{Labels: labels, Value: val, Raw: fields[0]}, nil
}

// parsePromLabels parses `k="v",...}` (the opening brace already
// consumed), returning the labels and the remaining text.
func parsePromLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair near %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label value for %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("unknown escape \\%c in label value for %q", s[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
		s = s[i+1:]
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("malformed label list near %q", s)
	}
}
