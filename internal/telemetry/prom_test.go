package telemetry

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusRoundTrip renders a populated registry and re-parses
// it with the in-repo exposition parser: every counter, gauge, and
// histogram _count/_sum must agree exactly (by raw text, beyond
// float64 precision) with the JSON snapshot of the same registry.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("crawl_visits_total", "crawl", "top100k-2020", "os", "Windows").Add(41)
	reg.Counter("crawl_visits_total", "crawl", "top100k-2020", "os", "Linux").Add(7)
	reg.Counter("plain_total").Add(3)
	reg.Gauge("serve_inflight", "plane", "query").Set(-2)
	h := reg.Histogram("visit_ns", "os", "Windows")
	for _, v := range []uint64{0, 1, 5, 1023, 1024, 1 << 40} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("render does not re-parse: %v\n%s", err, buf.String())
	}

	snap := reg.Snapshot()
	for key, want := range snap.Counters {
		name, labels := splitKey(key)
		var pairs []string
		for k, v := range labels {
			pairs = append(pairs, k, v)
		}
		s := doc.Series(name, pairs...)
		if s == nil {
			t.Fatalf("counter %s missing from exposition output", key)
		}
		if s.Raw != strconv.FormatUint(want, 10) {
			t.Errorf("counter %s: exposition %s, snapshot %d", key, s.Raw, want)
		}
	}
	if s := doc.Series("serve_inflight", "plane", "query"); s == nil || s.Raw != "-2" {
		t.Errorf("gauge render: got %+v", s)
	}
	hs := snap.Histograms[metricKey("visit_ns", []string{"os", "Windows"})]
	if s := doc.Series("visit_ns_count", "os", "Windows"); s == nil || s.Raw != strconv.FormatUint(hs.Count, 10) {
		t.Errorf("_count disagrees with snapshot %d: %+v", hs.Count, s)
	}
	if s := doc.Series("visit_ns_sum", "os", "Windows"); s == nil || s.Raw != strconv.FormatUint(hs.Sum, 10) {
		t.Errorf("_sum disagrees with snapshot %d: %+v", hs.Sum, s)
	}
	if s := doc.Series("visit_ns_bucket", "os", "Windows", "le", "+Inf"); s == nil || s.Raw != strconv.FormatUint(hs.Count, 10) {
		t.Errorf("+Inf bucket disagrees with count %d: %+v", hs.Count, s)
	}
	// Cumulative bucket for le=1023 covers samples 0, 1, 5, 1023.
	if s := doc.Series("visit_ns_bucket", "os", "Windows", "le", "1023"); s == nil || s.Raw != "4" {
		t.Errorf("cumulative bucket le=1023: %+v", s)
	}

	// Rendering is deterministic: a second render is byte-identical.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of an idle registry differ")
	}
}

// TestPrometheusHistogramEdgeCases covers the renderer-facing
// histogram corners: a registered-but-empty histogram, a single
// sample, and the max-bucket overflow value.
func TestPrometheusHistogramEdgeCases(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty_ns") // minted, never observed
	reg.Histogram("single_ns").Observe(42)
	reg.Histogram("huge_ns").Observe(math.MaxUint64)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("edge-case render does not parse: %v\n%s", err, buf.String())
	}

	if s := doc.Series("empty_ns_count"); s == nil || s.Raw != "0" {
		t.Errorf("empty histogram _count: %+v", s)
	}
	if s := doc.Series("empty_ns_bucket", "le", "+Inf"); s == nil || s.Raw != "0" {
		t.Errorf("empty histogram +Inf bucket: %+v", s)
	}
	if s := doc.Series("single_ns_count"); s == nil || s.Raw != "1" {
		t.Errorf("single-sample _count: %+v", s)
	}
	if s := doc.Series("single_ns_sum"); s == nil || s.Raw != "42" {
		t.Errorf("single-sample _sum: %+v", s)
	}
	// 42 has bit length 6, so its bucket's inclusive bound is 2^6-1.
	if s := doc.Series("single_ns_bucket", "le", "63"); s == nil || s.Raw != "1" {
		t.Errorf("single-sample bucket: %+v", s)
	}
	// MaxUint64 lands in the top bucket, whose bound is MaxUint64
	// itself; _sum must round-trip exactly as text.
	max := strconv.FormatUint(math.MaxUint64, 10)
	if s := doc.Series("huge_ns_bucket", "le", max); s == nil || s.Raw != "1" {
		t.Errorf("max-bucket overflow bucket: %+v", s)
	}
	if s := doc.Series("huge_ns_sum"); s == nil || s.Raw != max {
		t.Errorf("max-bucket overflow _sum: %+v", s)
	}
}

// TestPrometheusLabelSortingUnderConcurrentObserves hammers one
// histogram family through differently-ordered label lists from many
// goroutines: the registry must canonicalize to a single series and
// the rendered output must stay sorted and parseable.
func TestPrometheusLabelSortingUnderConcurrentObserves(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Alternate label order call-site by call-site; both must
				// resolve to the same canonical series.
				if (w+i)%2 == 0 {
					reg.Histogram("conc_ns", "crawl", "c", "os", "Linux").Observe(uint64(i))
				} else {
					reg.Histogram("conc_ns", "os", "Linux", "crawl", "c").Observe(uint64(i))
				}
				reg.Counter("conc_total", "os", "Linux", "crawl", "c").Inc()
			}
		}(w)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent-observe render does not parse: %v\n%s", err, buf.String())
	}
	want := strconv.Itoa(workers * per)
	if s := doc.Series("conc_ns_count", "crawl", "c", "os", "Linux"); s == nil || s.Raw != want {
		t.Errorf("histogram collapsed wrong: %+v, want count %s", s, want)
	}
	if s := doc.Series("conc_total", "crawl", "c", "os", "Linux"); s == nil || s.Raw != want {
		t.Errorf("counter collapsed wrong: %+v, want %s", s, want)
	}
	if n := strings.Count(buf.String(), "conc_ns_count"); n != 1 {
		t.Errorf("label order minted %d count series, want 1:\n%s", n, buf.String())
	}
}

// TestPrometheusSanitization maps hostile names and label values onto
// the exposition charset without breaking parseability.
func TestPrometheusSanitization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("2bad.name-total", "bad-key", `va"lue\with`+"\nnewline").Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "_bad_name_total{bad_key=") {
		t.Errorf("name sanitization missing:\n%s", out)
	}
	doc, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatalf("sanitized output does not parse: %v\n%s", err, out)
	}
	if s := doc.Series("_bad_name_total", "bad_key", "va\"lue\\with\nnewline"); s == nil || s.Raw != "1" {
		t.Errorf("escaped label value did not round-trip: %+v", s)
	}
}

// TestPrometheusParserStrictness rejects the malformations the CI
// scrape check exists to catch.
func TestPrometheusParserStrictness(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"duplicate series", "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n"},
		{"unsorted series", "# TYPE a counter\na{x=\"2\"} 1\na{x=\"1\"} 2\n"},
		{"series before TYPE", "a 1\n"},
		{"unsorted families", "# TYPE b counter\nb 1\n# TYPE a counter\na 1\n"},
		{"duplicate TYPE", "# TYPE a counter\na 1\n# TYPE a counter\n"},
		{"series outside family", "# TYPE a counter\nother 1\n"},
		{"histogram non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 3\n"},
		{"histogram truncated", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\n"},
		{"bad value", "# TYPE a counter\na one\n"},
	}
	for _, tc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: parser accepted invalid input:\n%s", tc.name, tc.input)
		}
	}
	// And the happy path stays accepted.
	ok := "# TYPE a counter\na{x=\"1\"} 1\na{x=\"2\"} 2\n# TYPE h histogram\nh_bucket{le=\"7\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2\n"
	if _, err := ParsePrometheus(strings.NewReader(ok)); err != nil {
		t.Errorf("parser rejected valid input: %v", err)
	}
}
