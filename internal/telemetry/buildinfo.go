package telemetry

import (
	"runtime"
	"runtime/debug"
)

// MetricBuildInfo is the standard build-identity gauge: constant 1,
// labeled with the binary's version and the Go toolchain that built
// it. Every binary registers it at startup so any scrape — and any
// load-harness report built from one — is attributable to a build.
const MetricBuildInfo = "knock_build_info"

// RegisterBuildInfo registers the knock_build_info gauge on r (nil
// uses the process-default registry) and returns the version label it
// chose. The gauge rides along on /metrics in both the JSON snapshot
// and the Prometheus text exposition.
func RegisterBuildInfo(r *Registry) string {
	if r == nil {
		r = Default()
	}
	version, goVersion := BuildVersion()
	r.Gauge(MetricBuildInfo, "version", version, "goversion", goVersion).Set(1)
	return version
}

// BuildVersion resolves the binary's version — the module version when
// built from a tagged module, the embedded VCS revision (short, with a
// +dirty marker) otherwise, "devel" as the last resort — plus the Go
// toolchain version.
func BuildVersion() (version, goVersion string) {
	version = "devel"
	goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "+dirty"
		}
		version = rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	return version, goVersion
}
