package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAppendVisitRecordMatchesEncodingJSON pins the hand-rolled trace
// encoder to encoding/json's output byte for byte, including omitempty
// semantics, HTML-safe escaping, control characters, U+2028/U+2029,
// and invalid UTF-8.
func TestAppendVisitRecordMatchesEncodingJSON(t *testing.T) {
	records := []VisitRecord{
		{Domain: "plain.example", StartUS: 1696000000000000, DurNS: 123456789, Outcome: "ok"},
		{Crawl: "top100k-2020", OS: "Windows", Domain: "ebay.com",
			URL: "https://ebay.com/?a=1&b=<2>", Rank: 104,
			StartUS: 1696000000000001, DurNS: 98765, Outcome: "ok", Events: 40,
			Spans: []Span{
				{Name: "visit", StartNS: 0, DurNS: 90000000, Items: 40},
				{Name: "detect", StartNS: 90000000, DurNS: 5000000, Items: 14},
				{Name: "netlog", StartNS: 95000000, DurNS: 1000000, Err: "disk \"full\"\n"},
			}},
		{Domain: "weird.example", URL: "tab\there\rline\x01sep\u2028and\u2029done",
			StartUS: -7, DurNS: 0, Outcome: "ERR_\\BAD\xffUTF8",
			Spans: []Span{{Name: "visit", StartNS: -5, DurNS: -3}}},
		{Crawl: "top100k-2020", OS: "Windows", Domain: "traced.example",
			StartUS: 1696000000000002, DurNS: 42, Outcome: "ok",
			TraceID:  DeriveTraceID(1, "t").String(),
			SpanID:   DeriveSpanID(DeriveTraceID(1, "t"), "visit").String(),
			ParentID: DeriveSpanID(DeriveTraceID(1, "t"), "lease").String()},
		// Root span: parent_id must omit, not render empty.
		{Domain: "root.example", StartUS: 3, Outcome: "ok",
			TraceID: DeriveTraceID(2, "r").String(),
			SpanID:  DeriveSpanID(DeriveTraceID(2, "r"), "campaign").String()},
	}
	for _, rec := range records {
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got := appendVisitRecord(nil, &rec)
		if string(got) != string(want)+"\n" {
			t.Errorf("encoder mismatch for %q:\n got %s\nwant %s", rec.Domain, got, want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{})

	start := time.Now()
	vt := tr.StartVisit("top100k-2020", "Windows", "ebay.com", "https://ebay.com/", 104)
	vt.Add("visit", start, 120*time.Millisecond, 40)
	vt.Add("detect", start.Add(120*time.Millisecond), 3*time.Millisecond, 14)
	vt.AddErr("netlog", start.Add(123*time.Millisecond), time.Millisecond, 0, "disk full")
	vt.End("ok", 40)
	vt.End("twice", 0) // second End is a no-op

	vt2 := tr.StartVisit("top100k-2020", "Windows", "dead.example", "https://dead.example/", 7)
	vt2.End("ERR_NAME_NOT_RESOLVED", 0)

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Written() != 2 || tr.Dropped() != 0 {
		t.Fatalf("written=%d dropped=%d, want 2/0", tr.Written(), tr.Dropped())
	}

	recs, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	v := recs[0]
	if v.Domain != "ebay.com" || v.OS != "Windows" || v.Rank != 104 || v.Outcome != "ok" || v.Events != 40 {
		t.Fatalf("visit record: %+v", v)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(v.Spans))
	}
	if v.Spans[0].Name != "visit" || v.Spans[0].DurNS != (120*time.Millisecond).Nanoseconds() || v.Spans[0].Items != 40 {
		t.Fatalf("visit span: %+v", v.Spans[0])
	}
	// Offsets are relative to the trace's own start clock (captured in
	// StartVisit, a hair after the test's reference time).
	if off := v.Spans[1].StartNS; off <= v.Spans[0].StartNS || off > (121*time.Millisecond).Nanoseconds() {
		t.Fatalf("detect span offset = %d", off)
	}
	if v.Spans[2].Err != "disk full" {
		t.Fatalf("netlog span error: %+v", v.Spans[2])
	}
	if recs[1].Outcome != "ERR_NAME_NOT_RESOLVED" || len(recs[1].Spans) != 0 {
		t.Fatalf("failed visit: %+v", recs[1])
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	vt := tr.StartVisit("c", "os", "d", "u", 1)
	if vt != nil {
		t.Fatal("nil tracer must return nil visit")
	}
	// All nil-receiver methods must be safe.
	vt.Add("visit", time.Now(), time.Second, 1)
	vt.AddErr("x", time.Now(), 0, 0, "e")
	vt.End("ok", 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 || tr.Written() != 0 {
		t.Fatal("nil tracer counts must read zero")
	}
}

// blockingWriter stalls until released, forcing the tracer queue to
// back up.
type blockingWriter struct {
	release chan struct{}
	once    sync.Once
	buf     bytes.Buffer
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return w.buf.Write(p)
}

func TestTracerDropsWhenSaturated(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	tr := NewTracer(w, TracerOptions{Buffer: 2})
	// The writer goroutine takes one record out of the queue and blocks
	// in Write; fill well past buffer+1 so some must drop.
	const visits = 10
	for i := 0; i < visits; i++ {
		vt := tr.StartVisit("c", "os", "d", "u", i)
		vt.End("ok", 0)
	}
	close(w.release)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	written, dropped := tr.Written(), tr.Dropped()
	if dropped == 0 {
		t.Fatal("saturated tracer must drop")
	}
	if written+dropped != visits {
		t.Fatalf("written %d + dropped %d != %d visits", written, dropped, visits)
	}
	recs, err := ReadTraces(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != written {
		t.Fatalf("sink holds %d records, tracer reports %d written", len(recs), written)
	}
	// End after Close drops instead of panicking.
	vt := tr.StartVisit("c", "os", "late", "u", 0)
	vt.End("ok", 0)
	if tr.Dropped() != dropped+1 {
		t.Fatal("End after Close must count as a drop")
	}
}

// TestTracerDropCounterExposition pins the satellite contract: every
// drop the sink counts is mirrored into the registry's
// trace_dropped_records_total counter and shows up in the Prometheus
// exposition.
func TestTracerDropCounterExposition(t *testing.T) {
	reg := NewRegistry()
	w := &blockingWriter{release: make(chan struct{})}
	tr := NewTracer(w, TracerOptions{Buffer: 1, Registry: reg})
	for i := 0; i < 8; i++ {
		vt := tr.StartVisit("c", "os", "d", "u", i)
		vt.End("ok", 0)
	}
	close(w.release)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() == 0 {
		t.Fatal("test needs at least one drop")
	}
	if got := reg.CounterValue(MetricTraceDropped); got != tr.Dropped() {
		t.Fatalf("registry counter = %d, tracer dropped = %d", got, tr.Dropped())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE trace_dropped_records_total counter\ntrace_dropped_records_total ") {
		t.Fatalf("exposition lacks trace_dropped_records_total:\n%s", b.String())
	}
	doc, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s := doc.Series(MetricTraceDropped); s == nil || s.Value != float64(tr.Dropped()) {
		t.Fatalf("parsed drop counter = %+v, want %d", s, tr.Dropped())
	}
}

// TestTracerEmit covers the externally-timed record path the fleet
// coordinator uses for its RPC spans.
func TestTracerEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{})
	trace := DeriveTraceID(5, "emit")
	tr.Emit(&VisitRecord{
		Crawl: "c", Domain: "lease-1", StartUS: 10, DurNS: 20, Outcome: "ok",
		TraceID: trace.String(), SpanID: DeriveSpanID(trace, "renew").String(),
		Spans: []Span{{Name: "renew", DurNS: 20, Items: 3}},
	})
	tr.Emit(nil) // nil record is a no-op, not a panic
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TraceID != trace.String() || recs[0].Spans[0].Name != "renew" {
		t.Fatalf("emitted records: %+v", recs)
	}
	// Emit after Close drops, and a nil tracer ignores Emit entirely.
	tr.Emit(&VisitRecord{Domain: "late"})
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	var nilTr *Tracer
	nilTr.Emit(&VisitRecord{Domain: "x"})
}

func TestReadTracesLineErrors(t *testing.T) {
	_, err := ReadTraces(strings.NewReader("{\"domain\":\"a\"}\n{broken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2", err)
	}
}

func TestSummarize(t *testing.T) {
	ms := func(n int64) int64 { return (time.Duration(n) * time.Millisecond).Nanoseconds() }
	visits := []VisitRecord{
		{Crawl: "c1", OS: "Windows", Domain: "a.com", DurNS: ms(100), Outcome: "ok", Events: 40,
			Spans: []Span{
				{Name: "visit", DurNS: ms(90)},
				{Name: "detect", DurNS: ms(5), Items: 14},
				{Name: "commit", DurNS: ms(1)},
			}},
		{Crawl: "c1", OS: "Linux", Domain: "b.com", DurNS: ms(50), Outcome: "ok", Events: 10,
			Spans: []Span{
				{Name: "visit", DurNS: ms(45)},
				{Name: "detect", DurNS: ms(2), Items: 0},
			}},
		{Crawl: "c2", OS: "Windows", Domain: "c.com", DurNS: ms(10), Outcome: "ERR_NAME_NOT_RESOLVED"},
	}
	s := Summarize(visits)
	if s.Visits != 3 || s.Failed != 1 || s.Events != 50 || s.Findings != 14 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Outcomes["ok"] != 2 || s.Outcomes["ERR_NAME_NOT_RESOLVED"] != 1 {
		t.Fatalf("outcomes: %+v", s.Outcomes)
	}
	det := s.Stages["detect"]
	if det == nil || det.Runs != 2 || det.Items != 14 || det.BusyNS != ms(7) {
		t.Fatalf("detect stage: %+v", det)
	}
	if got := s.BusySeconds()["detect"]; got != time.Duration(ms(7)).Seconds() {
		t.Fatalf("busy seconds = %v", got)
	}
	if s.ByOS["Windows"].Visits != 2 || s.ByOS["Windows"].Failed != 1 || s.ByOS["Linux"].Findings != 0 {
		t.Fatalf("by OS: %+v %+v", s.ByOS["Windows"], s.ByOS["Linux"])
	}
	if s.ByCrawl["c1"].Events != 50 || s.ByCrawl["c2"].Visits != 1 {
		t.Fatalf("by crawl: %+v %+v", s.ByCrawl["c1"], s.ByCrawl["c2"])
	}
	names := s.StageNames()
	if len(names) != 3 || names[0] != "visit" || names[1] != "detect" || names[2] != "commit" {
		t.Fatalf("stage order: %v", names)
	}
	top := SlowestVisits(visits, 2)
	if len(top) != 2 || top[0].Domain != "a.com" || top[1].Domain != "b.com" {
		t.Fatalf("slowest: %+v", top)
	}
}
