package telemetry

// Prometheus text exposition (format version 0.0.4) rendering of a
// registry snapshot. The renderer is the scrape surface of the live
// health plane: counters and gauges map one-to-one, and the fixed
// log-scale histograms render as cumulative `_bucket`/`_sum`/`_count`
// series with inclusive power-of-two upper bounds. Output is fully
// deterministic — families sorted by name, series sorted by canonical
// label string, labels sorted by key — so consecutive scrapes of an
// idle registry are byte-identical and the in-repo exposition parser
// (ParsePrometheus) can enforce ordering strictly.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry's current state in Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// promFamily collects one metric family's rendered series before
// output. For counters and gauges each series is one line; for
// histograms each label set ("instance") renders its whole
// bucket/sum/count block as one unit so instances never interleave.
type promFamily struct {
	name   string
	typ    string
	series []promRendered
}

type promRendered struct {
	sortKey string // canonical sorted k=v label string (without le)
	text    string
}

// WritePrometheus renders a snapshot in Prometheus text exposition
// format. Metric and label names are sanitized to the Prometheus
// charset; a counter, gauge, and histogram whose sanitized names
// collide is an error rather than silently merged output.
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	family := func(name, typ string) (*promFamily, error) {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
			return f, nil
		}
		if f.typ != typ {
			return nil, fmt.Errorf("telemetry: metric name %q used as both %s and %s", name, f.typ, typ)
		}
		return f, nil
	}

	for key, v := range s.Counters {
		name, labels := promSplit(key)
		f, err := family(name, "counter")
		if err != nil {
			return err
		}
		ls := promLabels(labels, "", "")
		f.series = append(f.series, promRendered{
			sortKey: ls,
			text:    name + ls + " " + strconv.FormatUint(v, 10) + "\n",
		})
	}
	for key, v := range s.Gauges {
		name, labels := promSplit(key)
		f, err := family(name, "gauge")
		if err != nil {
			return err
		}
		ls := promLabels(labels, "", "")
		f.series = append(f.series, promRendered{
			sortKey: ls,
			text:    name + ls + " " + strconv.FormatInt(v, 10) + "\n",
		})
	}
	for key, h := range s.Histograms {
		name, labels := promSplit(key)
		f, err := family(name, "histogram")
		if err != nil {
			return err
		}
		var b strings.Builder
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.N
			b.WriteString(name)
			b.WriteString("_bucket")
			b.WriteString(promLabels(labels, "le", strconv.FormatUint(bk.Le, 10)))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(cum, 10))
			if bk.ExemplarTraceID != "" {
				// OpenMetrics exemplar: the bucket's most recent traced
				// observation, linking the latency series to a trace ID.
				b.WriteString(` # {trace_id="`)
				b.WriteString(escapeLabelValue(bk.ExemplarTraceID))
				b.WriteString(`"} `)
				b.WriteString(strconv.FormatUint(bk.ExemplarValue, 10))
			}
			b.WriteByte('\n')
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(promLabels(labels, "le", "+Inf"))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteString("_sum")
		b.WriteString(promLabels(labels, "", ""))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(h.Sum, 10))
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteString("_count")
		b.WriteString(promLabels(labels, "", ""))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
		f.series = append(f.series, promRendered{sortKey: promLabels(labels, "", ""), text: b.String()})
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].sortKey < f.series[j].sortKey })
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, sr := range f.series {
			bw.WriteString(sr.text)
		}
	}
	// OpenMetrics end-of-stream marker; classic 0.0.4 scrapers treat it
	// as a comment, and the strict parser rejects content after it.
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// promSplit decomposes a registry key into a sanitized metric name and
// its label map (nil when unlabeled).
func promSplit(key string) (string, map[string]string) {
	name, labels := splitKey(key)
	return sanitizeMetricName(name), labels
}

// promLabels renders a label set as `{k="v",...}` with keys sorted,
// names sanitized, and values escaped. extraK/extraV append one more
// pair (the histogram `le` bound) in sorted position; an empty label
// set renders as the empty string.
func promLabels(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	if extraK != "" {
		keys = append(keys, extraK)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := extraV
		if k != extraK {
			v = labels[k]
		}
		b.WriteString(sanitizeLabelName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sanitizeMetricName maps a registry metric name onto the Prometheus
// metric charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(s string) string {
	return sanitizeName(s, true)
}

// sanitizeLabelName maps a label key onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(s string) string {
	return sanitizeName(s, false)
}

func sanitizeName(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	ok := func(i int, c byte) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			return true
		case c == ':':
			return allowColon
		case c >= '0' && c <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if !ok(i, s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if ok(i, s[i]) {
			b.WriteByte(s[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
