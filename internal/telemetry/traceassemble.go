package telemetry

// Cross-process trace assembly: merge visit records from any number of
// trace files (coordinator + workers + serve) into per-trace span
// trees. Records join a tree by trace_id; parent_id links give the
// causal structure. Assembly is forgiving where propagation is not:
// a record whose parent span never appears in any input (a stripped
// traceparent, a lost file) becomes an orphan root of its trace rather
// than corrupting the tree.

import "sort"

// TraceNode is one record of an assembled trace with its causal
// children.
type TraceNode struct {
	Rec      *VisitRecord
	Children []*TraceNode
	// Orphan marks a node that names a parent span absent from every
	// input file; it renders as a root, flagged.
	Orphan bool
}

// TraceTree is every record sharing one trace ID, assembled into
// parent/child structure.
type TraceTree struct {
	ID    string
	Roots []*TraceNode
	// Records counts the nodes in the tree (after same-span dedup).
	Records int
	// Sources lists the distinct files the records came from, sorted —
	// the tree's process span.
	Sources []string
	// StartUS/EndUS bound the tree's wall-clock window in Unix
	// microseconds.
	StartUS int64
	EndUS   int64
}

// Processes reports how many distinct source files contributed.
func (t *TraceTree) Processes() int { return len(t.Sources) }

// WallNS is the tree's wall-clock window width in nanoseconds.
func (t *TraceTree) WallNS() int64 { return (t.EndUS - t.StartUS) * 1000 }

// AssembleTraces groups records by trace ID and links them into trees.
// Records without a trace ID are skipped (untraced files assemble to
// nothing); duplicate (trace, span) pairs keep the first record seen,
// so replayed or double-read files stay stable. Trees sort by start
// time then ID; children sort by start time then domain.
func AssembleTraces(visits []VisitRecord) []*TraceTree {
	type traceAcc struct {
		tree   *TraceTree
		nodes  []*TraceNode
		bySpan map[string]*TraceNode
	}
	accs := map[string]*traceAcc{}
	var order []string
	for i := range visits {
		v := &visits[i]
		if v.TraceID == "" {
			continue
		}
		acc := accs[v.TraceID]
		if acc == nil {
			acc = &traceAcc{
				tree:   &TraceTree{ID: v.TraceID},
				bySpan: map[string]*TraceNode{},
			}
			accs[v.TraceID] = acc
			order = append(order, v.TraceID)
		}
		if v.SpanID != "" {
			if _, dup := acc.bySpan[v.SpanID]; dup {
				continue
			}
		}
		n := &TraceNode{Rec: v}
		acc.nodes = append(acc.nodes, n)
		if v.SpanID != "" {
			acc.bySpan[v.SpanID] = n
		}
	}
	trees := make([]*TraceTree, 0, len(order))
	for _, id := range order {
		acc := accs[id]
		t := acc.tree
		sources := map[string]bool{}
		for _, n := range acc.nodes {
			v := n.Rec
			t.Records++
			if v.Source != "" {
				sources[v.Source] = true
			}
			if t.Records == 1 || v.StartUS < t.StartUS {
				t.StartUS = v.StartUS
			}
			if end := v.StartUS + v.DurNS/1000; end > t.EndUS {
				t.EndUS = end
			}
			switch parent := acc.bySpan[v.ParentID]; {
			case v.ParentID == "":
				t.Roots = append(t.Roots, n)
			case parent == nil || parent == n:
				n.Orphan = true
				t.Roots = append(t.Roots, n)
			default:
				parent.Children = append(parent.Children, n)
			}
		}
		// Break parent cycles (corrupt or adversarial inputs): any node
		// unreachable from a root is cut from its parent and promoted
		// to an orphan root, so rendering always terminates.
		reached := map[*TraceNode]bool{}
		var mark func(n *TraceNode)
		mark = func(n *TraceNode) {
			if reached[n] {
				return
			}
			reached[n] = true
			for _, c := range n.Children {
				mark(c)
			}
		}
		for _, r := range t.Roots {
			mark(r)
		}
		for _, n := range acc.nodes {
			if reached[n] {
				continue
			}
			if parent := acc.bySpan[n.Rec.ParentID]; parent != nil {
				for i, c := range parent.Children {
					if c == n {
						parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
						break
					}
				}
			}
			n.Orphan = true
			t.Roots = append(t.Roots, n)
			mark(n)
		}
		for src := range sources {
			t.Sources = append(t.Sources, src)
		}
		sort.Strings(t.Sources)
		sortNodes(t.Roots)
		for _, n := range acc.nodes {
			sortNodes(n.Children)
		}
		trees = append(trees, t)
	}
	sort.Slice(trees, func(i, j int) bool {
		if trees[i].StartUS != trees[j].StartUS {
			return trees[i].StartUS < trees[j].StartUS
		}
		return trees[i].ID < trees[j].ID
	})
	return trees
}

func sortNodes(nodes []*TraceNode) {
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i].Rec, nodes[j].Rec
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.SpanID < b.SpanID
	})
}

// FindTrace returns the assembled tree whose ID equals or starts with
// id (hex prefixes are fine as long as they are unambiguous). The
// second result is false when no tree — or more than one — matches.
func FindTrace(trees []*TraceTree, id string) (*TraceTree, bool) {
	var found *TraceTree
	for _, t := range trees {
		if t.ID == id {
			return t, true
		}
		if id != "" && len(id) < len(t.ID) && t.ID[:len(id)] == id {
			if found != nil {
				return nil, false
			}
			found = t
		}
	}
	return found, found != nil
}
