package telemetry

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// ReadTraces parses a JSONL trace stream. Malformed lines fail with
// their line number, matching the netlog reader's contract.
func ReadTraces(r io.Reader) ([]VisitRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []VisitRecord
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec VisitRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading traces: %w", err)
	}
	return out, nil
}

// ReadTraceFiles reads and concatenates one or more trace files,
// tagging each record's Source with the file it came from (the
// provenance cross-process assembly attributes spans by). Files ending
// in .gz are transparently gunzipped, matching the gzip shard-upload
// path workers use.
func ReadTraceFiles(paths ...string) ([]VisitRecord, error) {
	var out []VisitRecord
	for _, path := range paths {
		recs, err := readTraceFile(path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for i := range recs {
			recs[i].Source = path
		}
		out = append(out, recs...)
	}
	return out, nil
}

func readTraceFile(path string) ([]VisitRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		r = gz
	}
	return ReadTraces(r)
}

// StageStats aggregates every span of one name across a trace.
type StageStats struct {
	Runs   uint64
	Items  uint64
	BusyNS int64
	// Hist holds the span durations in the registry's log-scale
	// buckets, so knocktrace prints the same histogram shape /metrics
	// histograms carry.
	Hist Histogram
}

// BusySeconds converts the stage's accumulated nanoseconds exactly as
// the serving layer's /metrics does, so the two renderings agree
// byte-for-byte for identical work.
func (s *StageStats) BusySeconds() float64 {
	return time.Duration(s.BusyNS).Seconds()
}

// GroupStats aggregates whole visits sharing one group key (an OS or a
// crawl).
type GroupStats struct {
	Visits   int
	Failed   int
	WallNS   int64
	Events   int
	Findings int
}

// TraceSummary is the aggregate view of a trace file.
type TraceSummary struct {
	Visits   int
	Failed   int
	WallNS   int64
	Events   int
	Findings int
	Outcomes map[string]int
	Stages   map[string]*StageStats
	ByOS     map[string]*GroupStats
	ByCrawl  map[string]*GroupStats
}

// Summarize aggregates visit records: per-stage run/item/busy totals
// and latency histograms, plus per-OS and per-crawl rollups.
func Summarize(visits []VisitRecord) *TraceSummary {
	sum := &TraceSummary{
		Outcomes: map[string]int{},
		Stages:   map[string]*StageStats{},
		ByOS:     map[string]*GroupStats{},
		ByCrawl:  map[string]*GroupStats{},
	}
	group := func(m map[string]*GroupStats, key string) *GroupStats {
		g := m[key]
		if g == nil {
			g = &GroupStats{}
			m[key] = g
		}
		return g
	}
	for i := range visits {
		v := &visits[i]
		sum.Visits++
		sum.WallNS += v.DurNS
		sum.Events += v.Events
		sum.Outcomes[v.Outcome]++
		failed := v.Outcome != "ok"
		if failed {
			sum.Failed++
		}
		findings := 0
		for _, sp := range v.Spans {
			st := sum.Stages[sp.Name]
			if st == nil {
				st = &StageStats{}
				sum.Stages[sp.Name] = st
			}
			st.Runs++
			st.Items += uint64(sp.Items)
			st.BusyNS += sp.DurNS
			st.Hist.Observe(uint64(max64(sp.DurNS, 0)))
			if sp.Name == "detect" {
				findings += sp.Items
			}
		}
		sum.Findings += findings
		for _, g := range []*GroupStats{group(sum.ByOS, v.OS), group(sum.ByCrawl, v.Crawl)} {
			g.Visits++
			g.WallNS += v.DurNS
			g.Events += v.Events
			g.Findings += findings
			if failed {
				g.Failed++
			}
		}
	}
	return sum
}

// BusySeconds renders per-stage busy time in seconds, keyed by stage
// name — the trace-side counterpart of the /metrics pipeline map.
func (s *TraceSummary) BusySeconds() map[string]float64 {
	out := make(map[string]float64, len(s.Stages))
	for name, st := range s.Stages {
		out[name] = st.BusySeconds()
	}
	return out
}

// StageNames returns the summary's stage names in canonical pipeline
// order (visit, detect, infer, classify, netlog, commit), with unknown
// names appended alphabetically.
func (s *TraceSummary) StageNames() []string {
	order := map[string]int{
		"visit": 0, "parse": 1, "detect": 2, "infer": 3,
		"classify": 4, "netlog": 5, "commit": 6,
	}
	names := make([]string, 0, len(s.Stages))
	for name := range s.Stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// TraceSummaryJSON is the machine-readable form of a trace summary —
// the knocktrace -json payload CI trend checks and dashboards consume.
// It is rendered from the same Summarize aggregation the text views
// print, so the two can never drift.
type TraceSummaryJSON struct {
	Visits      int                  `json:"visits"`
	Failed      int                  `json:"failed,omitempty"`
	Events      int                  `json:"events,omitempty"`
	Findings    int                  `json:"findings,omitempty"`
	WallSeconds float64              `json:"wall_seconds"`
	Outcomes    map[string]int       `json:"outcomes,omitempty"`
	Stages      []StageJSON          `json:"stages,omitempty"`
	ByOS        map[string]GroupJSON `json:"by_os,omitempty"`
	ByCrawl     map[string]GroupJSON `json:"by_crawl,omitempty"`
}

// StageJSON is one stage row: totals plus latency quantile bounds from
// the log-scale histogram.
type StageJSON struct {
	Stage       string  `json:"stage"`
	Runs        uint64  `json:"runs"`
	Items       uint64  `json:"items,omitempty"`
	BusySeconds float64 `json:"busy_seconds"`
	P50NS       uint64  `json:"p50_ns"`
	P90NS       uint64  `json:"p90_ns"`
	P99NS       uint64  `json:"p99_ns"`
}

// GroupJSON is one per-OS or per-crawl rollup row.
type GroupJSON struct {
	Visits      int     `json:"visits"`
	Failed      int     `json:"failed,omitempty"`
	Events      int     `json:"events,omitempty"`
	Findings    int     `json:"findings,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
}

// JSON renders the summary in its wire form: stages in canonical
// pipeline order, busy seconds converted exactly as the text views
// convert them.
func (s *TraceSummary) JSON() TraceSummaryJSON {
	out := TraceSummaryJSON{
		Visits:      s.Visits,
		Failed:      s.Failed,
		Events:      s.Events,
		Findings:    s.Findings,
		WallSeconds: time.Duration(s.WallNS).Seconds(),
		Outcomes:    s.Outcomes,
	}
	for _, name := range s.StageNames() {
		st := s.Stages[name]
		h := st.Hist.Snapshot()
		out.Stages = append(out.Stages, StageJSON{
			Stage:       name,
			Runs:        st.Runs,
			Items:       st.Items,
			BusySeconds: st.BusySeconds(),
			P50NS:       h.Quantile(0.50),
			P90NS:       h.Quantile(0.90),
			P99NS:       h.Quantile(0.99),
		})
	}
	group := func(m map[string]*GroupStats) map[string]GroupJSON {
		if len(m) == 0 {
			return nil
		}
		out := make(map[string]GroupJSON, len(m))
		for name, g := range m {
			out[name] = GroupJSON{
				Visits: g.Visits, Failed: g.Failed, Events: g.Events,
				Findings: g.Findings, WallSeconds: time.Duration(g.WallNS).Seconds(),
			}
		}
		return out
	}
	out.ByOS = group(s.ByOS)
	out.ByCrawl = group(s.ByCrawl)
	return out
}

// SlowestVisits returns the k visits with the largest wall time,
// slowest first (ties broken by domain for stable output).
func SlowestVisits(visits []VisitRecord, k int) []VisitRecord {
	out := make([]VisitRecord, len(visits))
	copy(out, visits)
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurNS != out[j].DurNS {
			return out[i].DurNS > out[j].DurNS
		}
		return out[i].Domain < out[j].Domain
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
