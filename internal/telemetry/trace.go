package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Span is one timed step of a visit: browser load ("visit"), capture
// retention ("netlog"), the pipeline stages ("detect", "infer",
// "classify"), and the store commit ("commit"). StartNS is the offset
// from the visit's start, so a waterfall renders without wall-clock
// arithmetic; DurNS carries the exact measured nanoseconds — the same
// value the metrics registry accumulates, which is what lets knocktrace
// reproduce /metrics busy-seconds from a trace file alone.
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Items   int    `json:"items,omitempty"`
	Err     string `json:"err,omitempty"`
}

// VisitRecord is one JSONL line of a trace file: one page visit
// (crawled or ingested) with its identity, outcome, and spans.
type VisitRecord struct {
	Crawl  string `json:"crawl,omitempty"`
	OS     string `json:"os,omitempty"`
	Domain string `json:"domain"`
	URL    string `json:"url,omitempty"`
	Rank   int    `json:"rank,omitempty"`
	// StartUS is the visit's wall-clock start in Unix microseconds.
	StartUS int64 `json:"start_us"`
	// DurNS is the visit's total wall time from StartVisit to End.
	DurNS int64 `json:"dur_ns"`
	// Outcome is "ok" or the load/ingest error string.
	Outcome string `json:"outcome"`
	// Events is the visit's telemetry volume (NetLog events).
	Events int `json:"events,omitempty"`
	// TraceID, SpanID, and ParentID place the record in a distributed
	// trace: the 32-hex trace identity shared across processes, this
	// record's own 16-hex span, and the 16-hex span that caused it
	// (empty for a root). All three are optional — untraced records
	// omit them, keeping the JSONL format backward-compatible.
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	Spans    []Span `json:"spans,omitempty"`
	// Source is the file the record was read from, set by
	// ReadTraceFiles so cross-process assembly can attribute spans to
	// processes. Never serialized.
	Source string `json:"-"`
}

// MetricTraceDropped counts visit records the trace sink discarded
// because its writer queue was full (or the sink already closed).
const MetricTraceDropped = "trace_dropped_records_total"

// TracerOptions tune a Tracer; the zero value picks defaults.
type TracerOptions struct {
	// Buffer is the number of finished visit records queued for the
	// writer goroutine before End starts dropping (default 1024).
	Buffer int
	// Registry, when set, mirrors the sink's dropped-record count into
	// the MetricTraceDropped counter so drops surface on /metrics, not
	// only through the health watchdog.
	Registry *Registry
}

// Tracer is an append-only JSONL trace sink. Visits record spans
// locally (no synchronization) and enqueue one finished record on End;
// a single writer goroutine marshals and writes. The queue is bounded:
// when the writer cannot keep up, End drops the record and counts it
// instead of stalling the crawl hot path.
type Tracer struct {
	ch       chan *VisitRecord
	done     chan struct{}
	dropped  atomic.Uint64
	written  atomic.Uint64
	mDropped *Counter
	werr     atomic.Pointer[error]
	// closeMu guards the channel close against concurrent End sends
	// (an in-flight ingest may finish while the server shuts the
	// tracer down). End takes the read side — uncontended in steady
	// state.
	closeMu sync.RWMutex
	closed  bool
}

// NewTracer starts a trace sink writing JSONL to w. Close flushes and
// stops the writer; w is not closed.
func NewTracer(w io.Writer, opts TracerOptions) *Tracer {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	t := &Tracer{
		ch:   make(chan *VisitRecord, opts.Buffer),
		done: make(chan struct{}),
	}
	if opts.Registry != nil {
		t.mDropped = opts.Registry.Counter(MetricTraceDropped)
	}
	go t.run(w)
	return t
}

// drop counts one discarded record in the sink's atomic and, when
// wired, the registry counter.
func (t *Tracer) drop() {
	t.dropped.Add(1)
	if t.mDropped != nil {
		t.mDropped.Inc()
	}
}

func (t *Tracer) run(w io.Writer) {
	defer close(t.done)
	bw := bufio.NewWriterSize(w, 1<<16)
	// The writer shares the machine with the crawl workers, so each
	// record is encoded by hand into a reused buffer instead of through
	// reflection-based marshaling.
	buf := make([]byte, 0, 1<<10)
	for rec := range t.ch {
		buf = appendVisitRecord(buf[:0], rec)
		if _, err := bw.Write(buf); err != nil {
			t.werr.CompareAndSwap(nil, &err)
			continue
		}
		t.written.Add(1)
	}
	if err := bw.Flush(); err != nil {
		t.werr.CompareAndSwap(nil, &err)
	}
}

// appendVisitRecord encodes rec as one JSONL line, matching the
// encoding/json output for VisitRecord field for field (the reader
// round-trips through encoding/json, and external consumers may too).
func appendVisitRecord(b []byte, rec *VisitRecord) []byte {
	b = append(b, '{')
	if rec.Crawl != "" {
		b = appendKey(b, "crawl")
		b = appendJSONString(b, rec.Crawl)
	}
	if rec.OS != "" {
		b = appendKey(b, "os")
		b = appendJSONString(b, rec.OS)
	}
	b = appendKey(b, "domain")
	b = appendJSONString(b, rec.Domain)
	if rec.URL != "" {
		b = appendKey(b, "url")
		b = appendJSONString(b, rec.URL)
	}
	if rec.Rank != 0 {
		b = appendKey(b, "rank")
		b = strconv.AppendInt(b, int64(rec.Rank), 10)
	}
	b = appendKey(b, "start_us")
	b = strconv.AppendInt(b, rec.StartUS, 10)
	b = appendKey(b, "dur_ns")
	b = strconv.AppendInt(b, rec.DurNS, 10)
	b = appendKey(b, "outcome")
	b = appendJSONString(b, rec.Outcome)
	if rec.Events != 0 {
		b = appendKey(b, "events")
		b = strconv.AppendInt(b, int64(rec.Events), 10)
	}
	if rec.TraceID != "" {
		b = appendKey(b, "trace_id")
		b = appendJSONString(b, rec.TraceID)
	}
	if rec.SpanID != "" {
		b = appendKey(b, "span_id")
		b = appendJSONString(b, rec.SpanID)
	}
	if rec.ParentID != "" {
		b = appendKey(b, "parent_id")
		b = appendJSONString(b, rec.ParentID)
	}
	if len(rec.Spans) > 0 {
		b = appendKey(b, "spans")
		b = append(b, '[')
		for i := range rec.Spans {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendSpan(b, &rec.Spans[i])
		}
		b = append(b, ']')
	}
	b = append(b, '}', '\n')
	return b
}

func appendSpan(b []byte, s *Span) []byte {
	b = append(b, '{')
	b = appendKey(b, "name")
	b = appendJSONString(b, s.Name)
	b = appendKey(b, "start_ns")
	b = strconv.AppendInt(b, s.StartNS, 10)
	b = appendKey(b, "dur_ns")
	b = strconv.AppendInt(b, s.DurNS, 10)
	if s.Items != 0 {
		b = appendKey(b, "items")
		b = strconv.AppendInt(b, int64(s.Items), 10)
	}
	if s.Err != "" {
		b = appendKey(b, "err")
		b = appendJSONString(b, s.Err)
	}
	return append(b, '}')
}

// appendKey appends `"key":`, preceded by a comma unless the key opens
// its object.
func appendKey(b []byte, key string) []byte {
	if n := len(b); n > 0 && b[n-1] != '{' {
		b = append(b, ',')
	}
	b = append(b, '"')
	b = append(b, key...)
	return append(b, '"', ':')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, escaping exactly the
// characters encoding/json escapes by default: the quote, the
// backslash, control characters, '<', '>', '&' (HTML-safe escaping),
// and the line separators U+2028/U+2029. Invalid UTF-8 bytes become
// U+FFFD, as encoding/json emits.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"':
				b = append(b, '\\', '"')
			case '\\':
				b = append(b, '\\', '\\')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == ' ' || r == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// Emit enqueues a caller-built record — the path for server-side
// request spans whose timing was measured outside a VisitTrace (fleet
// control-plane RPCs). Same bounded, drop-don't-stall queue as End;
// nil-safe. The record must not be mutated after Emit.
func (t *Tracer) Emit(rec *VisitRecord) {
	if t == nil || rec == nil {
		return
	}
	t.closeMu.RLock()
	defer t.closeMu.RUnlock()
	if t.closed {
		t.drop()
		return
	}
	select {
	case t.ch <- rec:
	default:
		t.drop()
	}
}

// StartVisit opens a per-visit trace. A nil Tracer returns a nil
// VisitTrace, whose methods are all no-ops — call sites never branch on
// whether tracing is enabled.
func (t *Tracer) StartVisit(crawl, os, domain, url string, rank int) *VisitTrace {
	if t == nil {
		return nil
	}
	now := time.Now()
	vt := &VisitTrace{
		t:     t,
		start: now,
		rec: VisitRecord{
			Crawl: crawl, OS: os, Domain: domain, URL: url, Rank: rank,
			StartUS: now.UnixMicro(),
		},
	}
	vt.rec.Spans = vt.spanBuf[:0]
	return vt
}

// Close stops accepting visits, flushes buffered records, and returns
// the first write error (if any). Safe to call more than once.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.closeMu.Lock()
	if !t.closed {
		t.closed = true
		close(t.ch)
	}
	t.closeMu.Unlock()
	<-t.done
	if perr := t.werr.Load(); perr != nil {
		return *perr
	}
	return nil
}

// Dropped reports how many finished visits were discarded because the
// writer queue was full (the sink's backpressure is drop, not stall).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Written reports how many visit records reached the sink.
func (t *Tracer) Written() uint64 {
	if t == nil {
		return 0
	}
	return t.written.Load()
}

// VisitTrace accumulates one visit's spans. It is owned by a single
// goroutine (the crawl worker or the ingest handler) and needs no
// locking; End hands the finished record to the tracer. All methods
// are nil-receiver safe.
type VisitTrace struct {
	t     *Tracer
	start time.Time
	rec   VisitRecord
	sc    SpanContext
	ended bool
	// spanBuf backs rec.Spans up to a typical visit's span count
	// (visit, parse, detect, infer, classify, netlog, commit), so
	// recording spans costs no allocations beyond the trace itself.
	spanBuf [8]Span
}

// Add records a completed span. start is the span's own start time and
// dur its measured wall time — pass the exact duration fed to the
// metrics registry so trace and registry agree.
func (v *VisitTrace) Add(name string, start time.Time, dur time.Duration, items int) {
	v.AddErr(name, start, dur, items, "")
}

// AddErr records a completed span carrying an error string.
func (v *VisitTrace) AddErr(name string, start time.Time, dur time.Duration, items int, errStr string) {
	if v == nil {
		return
	}
	v.rec.Spans = append(v.rec.Spans, Span{
		Name:    name,
		StartNS: start.Sub(v.start).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
		Items:   items,
		Err:     errStr,
	})
}

// End finishes the visit and enqueues its record. Calling End again is
// a no-op, so error paths can defer it.
func (v *VisitTrace) End(outcome string, events int) {
	if v == nil || v.ended {
		return
	}
	v.ended = true
	v.rec.DurNS = time.Since(v.start).Nanoseconds()
	v.rec.Outcome = outcome
	v.rec.Events = events
	t := v.t
	t.closeMu.RLock()
	defer t.closeMu.RUnlock()
	if t.closed {
		t.drop()
		return
	}
	select {
	case t.ch <- &v.rec:
	default:
		t.drop()
	}
}

// SetSpanContext assigns the visit's distributed-trace identity: its
// own span context plus the parent span that caused it (the zero
// SpanID marks a root). Invalid contexts are ignored, so propagation
// loss degrades to an untraced or root record, never a corrupt link.
func (v *VisitTrace) SetSpanContext(sc SpanContext, parent SpanID) {
	if v == nil || !sc.Valid() {
		return
	}
	v.sc = sc
	v.rec.TraceID = sc.TraceID.String()
	v.rec.SpanID = sc.SpanID.String()
	if parent.IsZero() {
		v.rec.ParentID = ""
	} else {
		v.rec.ParentID = parent.String()
	}
}

// SpanContext returns the visit's assigned span context (zero when the
// visit is untraced or v is nil).
func (v *VisitTrace) SpanContext() SpanContext {
	if v == nil {
		return SpanContext{}
	}
	return v.sc
}

// TraceIDString returns the visit's 32-hex trace ID, or "" when
// untraced — the form histogram exemplars carry.
func (v *VisitTrace) TraceIDString() string {
	if v == nil {
		return ""
	}
	return v.rec.TraceID
}
