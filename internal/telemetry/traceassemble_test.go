package telemetry

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

// rec builds a traced record the way the fleet writes them: span names
// are human-readable, IDs are derived hex strings.
func assembleRec(trace TraceID, span, parent, source, domain string, startUS, durNS int64) VisitRecord {
	r := VisitRecord{
		Crawl: "top100k-2020", OS: "Windows", Domain: domain,
		StartUS: startUS, DurNS: durNS, Outcome: "ok",
		TraceID: trace.String(),
		SpanID:  DeriveSpanID(trace, span).String(),
		Source:  source,
	}
	if parent != "" {
		r.ParentID = DeriveSpanID(trace, parent).String()
	}
	return r
}

func TestAssembleCrossProcessTree(t *testing.T) {
	trace := DeriveTraceID(42, "fleet", "top100k-2020")
	visits := []VisitRecord{
		// Coordinator: campaign root, two lease grants, one renew RPC.
		assembleRec(trace, "campaign", "", "coord.jsonl", "campaign", 100, 9000_000),
		assembleRec(trace, "lease/L0", "campaign", "coord.jsonl", "L0", 200, 0),
		assembleRec(trace, "lease/L1", "campaign", "coord.jsonl", "L1", 300, 0),
		assembleRec(trace, "renew/L0#1", "worker/alpha/L0", "coord.jsonl", "L0", 2000, 1000),
		// Worker alpha holds L0, worker beta holds L1.
		assembleRec(trace, "worker/alpha/L0", "lease/L0", "alpha.jsonl", "L0", 400, 5000_000),
		assembleRec(trace, "worker/beta/L1", "lease/L1", "beta.jsonl", "L1", 500, 4000_000),
		// Untraced record (tracing off upstream): never joins a tree.
		{Domain: "plain", StartUS: 1, Outcome: "ok", Source: "alpha.jsonl"},
		// Duplicate delivery of the beta lease record: first wins.
		assembleRec(trace, "worker/beta/L1", "lease/L1", "dup.jsonl", "L1", 500, 4000_000),
	}
	trees := AssembleTraces(visits)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.ID != trace.String() {
		t.Fatalf("tree ID %s, want %s", tree.ID, trace)
	}
	if tree.Records != 6 {
		t.Fatalf("tree has %d records, want 6 (dup deduped, untraced skipped)", tree.Records)
	}
	if got := tree.Processes(); got != 3 {
		t.Fatalf("Processes() = %d (%v), want 3", got, tree.Sources)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Rec.Domain != "campaign" {
		t.Fatalf("roots = %d, want the single campaign root", len(tree.Roots))
	}
	root := tree.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("campaign has %d children, want 2 lease grants", len(root.Children))
	}
	// Children sort by start time: L0 grant then L1 grant.
	l0 := root.Children[0]
	if l0.Rec.Domain != "L0" || len(l0.Children) != 1 {
		t.Fatalf("L0 grant children = %d", len(l0.Children))
	}
	alpha := l0.Children[0]
	if alpha.Rec.Source != "alpha.jsonl" || len(alpha.Children) != 1 {
		t.Fatalf("alpha lease span misplaced: %+v", alpha.Rec)
	}
	if alpha.Children[0].Rec.Source != "coord.jsonl" {
		t.Fatal("renew RPC should hang under the worker span that issued it")
	}
	// The dedup kept the first-seen copy of the beta span.
	beta := root.Children[1].Children[0]
	if beta.Rec.Source != "beta.jsonl" {
		t.Fatalf("dedup kept %s, want beta.jsonl", beta.Rec.Source)
	}
	if tree.StartUS != 100 {
		t.Fatalf("tree StartUS = %d, want 100", tree.StartUS)
	}
	if wantEnd := int64(100 + 9000_000/1000); tree.EndUS != wantEnd {
		t.Fatalf("tree EndUS = %d, want %d", tree.EndUS, wantEnd)
	}
}

func TestAssembleOrphanAndCycle(t *testing.T) {
	trace := DeriveTraceID(7, "x")
	visits := []VisitRecord{
		// Parent span exists nowhere: propagation was lost downstream.
		assembleRec(trace, "child", "vanished", "w.jsonl", "orphaned", 50, 0),
		// Two records that parent each other: corrupt input must not
		// hang or vanish from the output.
		assembleRec(trace, "cycA", "cycB", "w.jsonl", "cycA", 60, 0),
		assembleRec(trace, "cycB", "cycA", "w.jsonl", "cycB", 70, 0),
	}
	trees := AssembleTraces(visits)
	if len(trees) != 1 {
		t.Fatalf("got %d trees", len(trees))
	}
	tree := trees[0]
	if tree.Records != 3 {
		t.Fatalf("records = %d, want 3", tree.Records)
	}
	total := 0
	for _, r := range tree.Roots {
		if !r.Orphan {
			t.Errorf("root %s not flagged orphan", r.Rec.Domain)
		}
		total++
		for _, c := range r.Children {
			total++
			if len(c.Children) != 0 {
				t.Error("cycle not broken: grandchild present")
			}
		}
	}
	if total != 3 {
		t.Fatalf("reachable nodes = %d, want all 3", total)
	}
}

func TestFindTracePrefix(t *testing.T) {
	a := DeriveTraceID(1, "a")
	b := DeriveTraceID(1, "b")
	trees := AssembleTraces([]VisitRecord{
		assembleRec(a, "root", "", "f", "a", 1, 0),
		assembleRec(b, "root", "", "f", "b", 2, 0),
	})
	if got, ok := FindTrace(trees, a.String()); !ok || got.ID != a.String() {
		t.Fatal("exact ID lookup failed")
	}
	// An unambiguous prefix resolves; the empty string and a shared
	// prefix (if any) must not.
	if got, ok := FindTrace(trees, a.String()[:16]); !ok || got.ID != a.String() {
		// 16 hex chars colliding between two derived IDs would be
		// astronomically unlucky; treat as a real failure.
		t.Fatal("unambiguous prefix lookup failed")
	}
	if _, ok := FindTrace(trees, ""); ok {
		t.Fatal("empty prefix matched")
	}
	if _, ok := FindTrace(trees, "zzzz"); ok {
		t.Fatal("non-matching prefix matched")
	}
}

// TestReadTraceFilesGzip covers the knocktrace ingestion path for
// rotated/compressed trace files: a .jsonl.gz input is transparently
// decompressed and its records tagged with the source path.
func TestReadTraceFilesGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "a.jsonl")
	packed := filepath.Join(dir, "b.jsonl.gz")

	trace := DeriveTraceID(3, "gz")
	r1 := assembleRec(trace, "root", "", "", "one", 1, 0)
	r2 := assembleRec(trace, "kid", "root", "", "two", 2, 0)

	var line1, line2 []byte
	line1 = append(appendVisitRecord(line1, &r1), '\n')
	line2 = append(appendVisitRecord(line2, &r2), '\n')
	if err := os.WriteFile(plain, line1, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(packed)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(line2); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	visits, err := ReadTraceFiles(plain, packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 2 {
		t.Fatalf("read %d records, want 2", len(visits))
	}
	bySrc := map[string]string{}
	for _, v := range visits {
		bySrc[v.Domain] = v.Source
	}
	if bySrc["one"] != plain || bySrc["two"] != packed {
		t.Fatalf("sources = %v", bySrc)
	}
	trees := AssembleTraces(visits)
	if len(trees) != 1 || trees[0].Processes() != 2 {
		t.Fatalf("gzip + plain records did not assemble into one 2-process tree: %+v", trees)
	}
	// A corrupt gzip stream reports an error naming the file.
	if err := os.WriteFile(filepath.Join(dir, "bad.jsonl.gz"), []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFiles(filepath.Join(dir, "bad.jsonl.gz")); err == nil {
		t.Fatal("corrupt gzip read did not error")
	}
}
