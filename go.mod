module github.com/knockandtalk/knockandtalk

go 1.22
