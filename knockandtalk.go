// Package knockandtalk is a reproduction of "Knock and Talk:
// Investigating Local Network Communications on Websites" (Kuchhal &
// Li, ACM IMC 2021): a measurement pipeline that crawls website
// populations with simulated Chrome instances on Windows, Linux, and
// Mac machines, records NetLog telemetry, detects every request bound
// for the visitor's localhost or LAN, classifies why each site makes
// such requests, and regenerates the paper's tables and figures.
//
// The package is a façade over the implementation packages:
//
//   - Crawling: Run / RunAll execute a campaign against the synthetic
//     web (the offline substitution for the live Internet, seeded from
//     the paper's published per-site ground truth).
//   - Detection: Detect extracts localhost/LAN findings from a NetLog.
//   - Classification: ClassifySite mechanizes the §4.3 taxonomy.
//   - Analysis and reporting: the Report* functions regenerate each
//     table and figure from stored telemetry.
//   - Defense: AuditPNA evaluates the WICG Private Network Access
//     proposal (§5.3) against observed traffic.
//
// A minimal end-to-end use:
//
//	st := knockandtalk.NewStore()
//	sum, err := knockandtalk.Run(knockandtalk.Config{
//		Crawl: knockandtalk.CrawlTop2020,
//		OS:    knockandtalk.Windows,
//		Scale: 0.01, Seed: 42,
//	}, st)
//	fmt.Println(knockandtalk.ReportHeadline(st, knockandtalk.CrawlTop2020))
package knockandtalk

import (
	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/longitudinal"
	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/pna"
	"github.com/knockandtalk/knockandtalk/internal/probeinfer"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// Crawl campaigns.
type Crawl = groundtruth.CrawlID

// The three measurement campaigns of the study.
const (
	CrawlTop2020   = groundtruth.CrawlTop2020
	CrawlTop2021   = groundtruth.CrawlTop2021
	CrawlMalicious = groundtruth.CrawlMalicious
)

// OS identifies a crawling platform.
type OS = hostenv.OS

// The three measured OSes.
const (
	Windows = hostenv.Windows
	Linux   = hostenv.Linux
	MacOSX  = hostenv.MacOSX
)

// Config selects and sizes a crawl campaign; see crawler.Config.
type Config = crawler.Config

// Summary reports one campaign's crawl statistics.
type Summary = crawler.Summary

// Store holds crawl telemetry: page records and extracted local
// requests.
type Store = store.Store

// PageRecord and LocalRequest are the store's record types.
type (
	PageRecord   = store.PageRecord
	LocalRequest = store.LocalRequest
)

// NewStore returns an empty telemetry store.
func NewStore() *Store { return store.New() }

// Run executes one crawl campaign (one OS) into dst.
func Run(cfg Config, dst *Store) (*Summary, error) { return crawler.Run(cfg, dst) }

// RunAll executes a campaign on every OS it covers.
func RunAll(cfg Config, dst *Store) ([]*Summary, error) { return crawler.RunAll(cfg, dst) }

// NetLog is a browser telemetry capture.
type NetLog = netlog.Log

// Finding is one detected local-network request.
type Finding = localnet.Finding

// Detect extracts localhost/LAN findings from a NetLog capture,
// filtering browser-internal traffic.
func Detect(log *NetLog) []Finding { return localnet.FromLog(log) }

// PortInference is the timing-side-channel verdict for one probed local
// port (§4.3.2).
type PortInference = probeinfer.Inference

// InferProbes runs detection plus the timing/handshake side channel
// over a visit's NetLog, returning what the probing script could learn
// about each local port.
func InferProbes(log *NetLog) []PortInference { return probeinfer.FromLog(log) }

// Class is the §4.3 behavior taxonomy.
type Class = groundtruth.Class

// Behavior classes.
const (
	ClassFraudDetection = groundtruth.ClassFraudDetection
	ClassBotDetection   = groundtruth.ClassBotDetection
	ClassNativeApp      = groundtruth.ClassNativeApp
	ClassDevError       = groundtruth.ClassDevError
	ClassUnknown        = groundtruth.ClassUnknown
)

// Verdict is a site classification.
type Verdict = classify.Verdict

// ClassifySite classifies one site's localhost requests.
func ClassifySite(reqs []LocalRequest) Verdict { return classify.Site(reqs) }

// ClassifyLANSite classifies one site's LAN requests.
func ClassifyLANSite(reqs []LocalRequest) Verdict { return classify.LANSite(reqs) }

// SiteActivity aggregates one site's local behavior across OSes.
type SiteActivity = analysis.SiteActivity

// LocalSites groups and classifies a crawl's local traffic by site for
// one destination class ("localhost" or "lan").
func LocalSites(st *Store, crawl Crawl, dest string) []SiteActivity {
	return analysis.LocalSites(st, crawl, dest)
}

// Report functions regenerate the paper's tables and figures from
// stored telemetry.
func ReportTable1(st *Store) string { return report.Table1(st) }

// ReportTable2 renders the malicious-category summary.
func ReportTable2(st *Store) string { return report.Table2(st) }

// ReportTable3 renders the top localhost-active domains per OS.
func ReportTable3(st *Store, crawl Crawl) string { return report.Table3(st, crawl) }

// ReportTable4 renders the port-to-service registry.
func ReportTable4() string { return report.Table4() }

// ReportLocalhostSites renders a Table 5/7/8-style per-site listing.
func ReportLocalhostSites(st *Store, crawl Crawl, title string) string {
	return report.LocalhostTable(st, crawl, title)
}

// ReportLANSites renders a Table 6/9/10-style listing.
func ReportLANSites(st *Store, crawl Crawl, title string) string {
	return report.LANTable(st, crawl, title)
}

// ReportFigure2 renders the OS-overlap regions.
func ReportFigure2(st *Store, crawl Crawl) string { return report.Figure2(st, crawl) }

// ReportRankCDF renders a Figure 3/9-style rank CDF.
func ReportRankCDF(st *Store, crawl Crawl, title string) string {
	return report.RankCDFFigure(st, crawl, title)
}

// ReportDelayCDF renders a Figure 5/6/7-style timing CDF.
func ReportDelayCDF(st *Store, crawl Crawl, dest, title string) string {
	return report.DelayCDFFigure(st, crawl, dest, title)
}

// ReportSchemeRollup renders a Figure 4/8-style protocol/port rollup.
func ReportSchemeRollup(st *Store, crawl Crawl, title string) string {
	return report.SchemeRollupFigure(st, crawl, title)
}

// ReportHeadline renders the §4.1 topline counts.
func ReportHeadline(st *Store, crawl Crawl) string { return report.Headline(st, crawl) }

// ChurnReport is the §4.1 longitudinal comparison between the 2020 and
// 2021 top-list crawls.
type ChurnReport = longitudinal.Report

// CompareCrawls builds the churn report for one destination class
// ("localhost" or "lan") from a store holding both top-list crawls.
func CompareCrawls(st *Store, dest string) *ChurnReport {
	return longitudinal.Compare(st, dest)
}

// ReportLongitudinal renders the churn analysis.
func ReportLongitudinal(st *Store, dest string) string { return report.Longitudinal(st, dest) }

// ReportOSSkew renders the §4.1/§4.2 OS-targeting and SOP-exemption
// summary.
func ReportOSSkew(st *Store, crawl Crawl) string { return report.OSSkewAndSOP(st, crawl) }

// CSV exports of the figure series.
func CSVRankCDF(st *Store, crawl Crawl) string { return report.RankCDFCSV(st, crawl) }

// CSVDelayCDF exports a Figure 5/6/7 series.
func CSVDelayCDF(st *Store, crawl Crawl, dest string) string {
	return report.DelayCDFCSV(st, crawl, dest)
}

// CSVRollup exports a Figure 4/8 series.
func CSVRollup(st *Store, crawl Crawl) string { return report.RollupCSV(st, crawl) }

// PNAPolicy configures the Private Network Access defense evaluation.
type PNAPolicy = pna.Policy

// PNAWICGDraft is the full WICG proposal of §5.3.
var PNAWICGDraft = pna.WICGDraft

// PNAAuditRow is one class's outcome under a policy.
type PNAAuditRow = pna.AuditRow

// AuditPNA replays a crawl's local traffic under a Private Network
// Access policy.
func AuditPNA(st *Store, crawl Crawl, policy PNAPolicy) []PNAAuditRow {
	return pna.Audit(st, crawl, policy)
}
