// Storage-engine benchmark: the incremental index must beat a
// from-scratch rebuild by at least 10x for single-visit ingests, and
// the WAL must sustain append and recovery-replay rates that keep the
// durability path off the crawl's critical path. The bench smoke emits
// BENCH_store.json so all three numbers are tracked run over run.
package knockandtalk_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// storeBenchResult is the BENCH_store.json schema.
type storeBenchResult struct {
	Pages  int `json:"pages"`
	Locals int `json:"locals"`

	ColdRebuildNsOp float64 `json:"cold_rebuild_ns_op"`
	DeltaApplyNsOp  float64 `json:"delta_apply_ns_op"`
	DeltaSpeedupX   float64 `json:"delta_speedup_x"`

	WALRecords          int     `json:"wal_records"`
	WALBytes            int64   `json:"wal_bytes"`
	WALAppendRecsPerSec float64 `json:"wal_append_records_per_sec"`
	WALAppendMBPerSec   float64 `json:"wal_append_mb_per_sec"`

	// RecoveryWALCommits counts replayed WAL records (one per commit,
	// each holding a whole visit), not store records.
	RecoveryWALCommits int     `json:"recovery_wal_commits"`
	RecoveryReplayMs   float64 `json:"recovery_replay_ms"`
	RecoveryRecsPerSec float64 `json:"recovery_records_per_sec"`
	RecoveryTruncated  bool    `json:"recovery_truncated"`
}

// benchVisit is one synthetic visit's records: a page plus two local
// probes, the shape a live ingest commits.
func benchVisit(n int) (store.PageRecord, []store.LocalRequest) {
	domain := fmt.Sprintf("bench-visit-%d.example", n)
	p := store.PageRecord{
		Crawl: "bench-live", OS: "Windows", Domain: domain, Rank: 100000 + n,
		URL: "https://" + domain + "/",
	}
	ls := []store.LocalRequest{
		{
			Crawl: "bench-live", OS: "Windows", Domain: domain, Rank: 100000 + n,
			URL: "ws://127.0.0.1:5939/", Scheme: "ws", Host: "127.0.0.1",
			Port: 5939, Path: "/", Dest: "localhost", Delay: 120 * time.Millisecond,
			SOPExempt: true,
		},
		{
			Crawl: "bench-live", OS: "Windows", Domain: domain, Rank: 100000 + n,
			URL: "https://192.168.0.1/", Scheme: "https", Host: "192.168.0.1",
			Port: 443, Path: "/", Dest: "lan", Delay: 250 * time.Millisecond,
		},
	}
	return p, ls
}

func medianDuration(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	m := ds[len(ds)/2]
	if len(ds)%2 == 0 {
		m = (ds[len(ds)/2-1] + ds[len(ds)/2]) / 2
	}
	return m
}

// BenchmarkStoreEngine measures the three legs of the storage engine
// over the golden campaign corpus and writes BENCH_store.json:
//
//   - cold rebuild: a fresh SiteIndex materialized from scratch after a
//     single-visit commit (what every query paid before the delta path);
//   - delta apply: the same commit absorbed by a warm index through
//     DeltaSince (what queries pay now) — gated at >= 10x faster;
//   - WAL append throughput and recovery replay rate for the same
//     visit stream.
//
// Cold and delta rounds alternate over identical visit shapes so
// machine drift cancels, and each leg keeps its median.
func BenchmarkStoreEngine(b *testing.B) {
	st := goldenStore(b)
	res := storeBenchResult{Pages: st.NumPages(), Locals: st.NumLocals()}

	const rounds = 32
	visitN := 0
	commitVisit := func() {
		p, ls := benchVisit(visitN)
		visitN++
		batch := &store.Batch{}
		batch.AddPage(p)
		for _, l := range ls {
			batch.AddLocal(l)
		}
		st.AddBatch(batch)
	}

	for i := 0; i < b.N; i++ {
		// Warm incremental index: materialized once, then kept current
		// by delta applies for the rest of the measurement.
		warm := pipeline.NewIndex(st)
		warm.CrawlTable()

		var coldDs, deltaDs []time.Duration
		for r := 0; r < rounds; r++ {
			commitVisit()
			start := time.Now()
			warm.CrawlTable() // absorbs exactly the one-visit delta
			deltaDs = append(deltaDs, time.Since(start))

			commitVisit()
			start = time.Now()
			cold := pipeline.NewIndex(st)
			cold.CrawlTable() // full from-scratch materialization
			coldDs = append(coldDs, time.Since(start))
		}
		res.ColdRebuildNsOp = float64(medianDuration(coldDs).Nanoseconds())
		res.DeltaApplyNsOp = float64(medianDuration(deltaDs).Nanoseconds())
	}
	res.DeltaSpeedupX = res.ColdRebuildNsOp / res.DeltaApplyNsOp

	// WAL append throughput: journal a visit stream through a fresh
	// durable directory, ending on the Checkpoint that makes it
	// crash-safe. Compaction is disabled so the replay leg below
	// measures the pure WAL path rather than a segment load.
	const walVisits = 2000
	dir := b.TempDir()
	wst, lg, _, err := store.Open(dir, store.LogOptions{CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	for v := 0; v < walVisits; v++ {
		p, ls := benchVisit(v)
		batch := &store.Batch{}
		batch.AddPage(p)
		for _, l := range ls {
			batch.AddLocal(l)
		}
		wst.AddBatch(batch)
	}
	if err := lg.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	appendD := time.Since(start)
	res.WALRecords = wst.NumPages() + wst.NumLocals()
	res.WALBytes = lg.WALBytes()
	res.WALAppendRecsPerSec = float64(res.WALRecords) / appendD.Seconds()
	res.WALAppendMBPerSec = float64(res.WALBytes) / (1 << 20) / appendD.Seconds()
	if err := lg.Close(); err != nil {
		b.Fatal(err)
	}

	// Recovery replay: reopen the directory cold, best of three.
	replayBest := time.Duration(1 << 62)
	for t := 0; t < 3; t++ {
		start := time.Now()
		rst, rlg, rec, err := store.Open(dir, store.LogOptions{CompactBytes: -1})
		d := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if got := rst.NumPages() + rst.NumLocals(); got != res.WALRecords {
			b.Fatalf("recovery replayed %d records, appended %d", got, res.WALRecords)
		}
		if d < replayBest {
			replayBest = d
		}
		res.RecoveryWALCommits = rec.SegmentRecords + rec.WALRecords
		res.RecoveryTruncated = rec.Truncated
		if err := rlg.Close(); err != nil {
			b.Fatal(err)
		}
	}
	res.RecoveryReplayMs = replayBest.Seconds() * 1e3
	res.RecoveryRecsPerSec = float64(res.WALRecords) / replayBest.Seconds()

	b.ReportMetric(res.DeltaSpeedupX, "delta-speedup-x")
	b.ReportMetric(res.WALAppendRecsPerSec, "wal-recs/sec")
	b.ReportMetric(res.RecoveryReplayMs, "recovery-ms")

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("store engine: cold rebuild %.2fms, delta apply %.1fµs (%.0fx), wal append %.0f recs/sec, recovery %.1fms\n",
		res.ColdRebuildNsOp/1e6, res.DeltaApplyNsOp/1e3, res.DeltaSpeedupX,
		res.WALAppendRecsPerSec, res.RecoveryReplayMs)

	if res.DeltaSpeedupX < 10 {
		b.Fatalf("delta apply is only %.1fx faster than a cold rebuild (need >= 10x): cold %.0fns, delta %.0fns",
			res.DeltaSpeedupX, res.ColdRebuildNsOp, res.DeltaApplyNsOp)
	}
}
