package knockandtalk_test

import (
	"strings"
	"testing"

	knockandtalk "github.com/knockandtalk/knockandtalk"
)

// TestPublicAPIEndToEnd drives the façade the way a downstream user
// would: crawl, inspect, classify, report, audit.
func TestPublicAPIEndToEnd(t *testing.T) {
	st := knockandtalk.NewStore()
	sum, err := knockandtalk.Run(knockandtalk.Config{
		Crawl: knockandtalk.CrawlTop2020,
		OS:    knockandtalk.Windows,
		Scale: 0.01,
		Seed:  99,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Attempted != 1000 || sum.LocalRequests == 0 {
		t.Fatalf("summary = %+v", sum)
	}

	sites := knockandtalk.LocalSites(st, knockandtalk.CrawlTop2020, "localhost")
	if len(sites) != 5 {
		t.Fatalf("sites = %d, want 5 in the top 1000", len(sites))
	}
	fraud := 0
	for _, s := range sites {
		if s.Verdict.Class == knockandtalk.ClassFraudDetection {
			fraud++
		}
	}
	if fraud != 4 {
		t.Errorf("fraud sites = %d, want 4 (the eBay properties)", fraud)
	}

	headline := knockandtalk.ReportHeadline(st, knockandtalk.CrawlTop2020)
	if !strings.Contains(headline, "5 sites making localhost requests") {
		t.Errorf("headline = %q", headline)
	}
	if out := knockandtalk.ReportTable1(st); !strings.Contains(out, "NAME_NOT_RESOLVED") {
		t.Error("Table 1 rendering broken")
	}
	if out := knockandtalk.ReportTable4(); !strings.Contains(out, "TeamViewer") {
		t.Error("Table 4 rendering broken")
	}

	rows := knockandtalk.AuditPNA(st, knockandtalk.CrawlTop2020, knockandtalk.PNAWICGDraft)
	blocked, total := 0, 0
	for _, r := range rows {
		total += r.Requests
		blocked += r.Blocked()
	}
	if total == 0 || blocked != total {
		t.Errorf("PNA audit on this slice should block everything (no native apps in top 1000): %d/%d", blocked, total)
	}
}

func TestClassifyViaFacade(t *testing.T) {
	v := knockandtalk.ClassifySite([]knockandtalk.LocalRequest{{
		Domain: "x.example", Scheme: "http", Host: "127.0.0.1", Port: 8888,
		Path: "/wp-content/uploads/x.png", Dest: "localhost",
	}})
	if v.Class != knockandtalk.ClassDevError {
		t.Errorf("verdict = %+v", v)
	}
	lan := knockandtalk.ClassifyLANSite([]knockandtalk.LocalRequest{{
		Domain: "y.example", Scheme: "http", Host: "10.10.34.35", Port: 80,
		Path: "/", Dest: "lan",
	}})
	if lan.Class != knockandtalk.ClassUnknown {
		t.Errorf("LAN verdict = %+v", lan)
	}
}

func TestFacadeCSVAndChurn(t *testing.T) {
	st := knockandtalk.NewStore()
	for _, crawl := range []knockandtalk.Crawl{knockandtalk.CrawlTop2020, knockandtalk.CrawlTop2021} {
		if _, err := knockandtalk.RunAll(knockandtalk.Config{
			Crawl: crawl, Scale: 0.01, Seed: 5, Workers: 4,
		}, st); err != nil {
			t.Fatal(err)
		}
	}
	if csv := knockandtalk.CSVRankCDF(st, knockandtalk.CrawlTop2020); !strings.HasPrefix(csv, "os,rank,cdf\n") {
		t.Error("rank CDF CSV malformed")
	}
	if csv := knockandtalk.CSVDelayCDF(st, knockandtalk.CrawlTop2020, "localhost"); !strings.Contains(csv, "Windows") {
		t.Error("delay CDF CSV missing Windows series")
	}
	if csv := knockandtalk.CSVRollup(st, knockandtalk.CrawlTop2020); !strings.Contains(csv, "wss") {
		t.Error("rollup CSV missing wss")
	}
	churn := knockandtalk.CompareCrawls(st, "localhost")
	if len(churn.Sites) == 0 {
		t.Fatal("churn empty")
	}
	if out := knockandtalk.ReportLongitudinal(st, "localhost"); !strings.Contains(out, "continued") {
		t.Error("longitudinal report malformed")
	}
	if out := knockandtalk.ReportOSSkew(st, knockandtalk.CrawlTop2020); !strings.Contains(out, "Windows-exclusive") {
		t.Error("skew report malformed")
	}
}
