// Network-condition chain overhead benchmark: the nominal visit path
// now computes its timings through the composable Conditions chain, and
// that indirection must stay within 5% of a fused single-pass
// implementation of the old LatencyModel arithmetic — the chain is free
// when idle. An impaired crawl variant is measured alongside so profile
// throughput is tracked run over run in BENCH_netcond.json.
package knockandtalk_test

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/browser"
	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// fusedNominal is the pre-Conditions LatencyModel collapsed into one
// stage: classify once, add base and jitter in a single pass. It is the
// tightest implementation the chain competes against.
type fusedNominal struct {
	v simnet.Vantage
}

func (s fusedNominal) Apply(seed uint64, f simnet.Flow, p *simnet.Path) {
	var base, jmax time.Duration
	switch {
	case f.Dst.IsLoopback():
		base, jmax = 150*time.Microsecond, 250*time.Microsecond
	case f.Dst.Is4() && f.Dst.IsPrivate():
		base, jmax = time.Millisecond, 4*time.Millisecond
	case f.Dst.IsLinkLocalUnicast():
		base, jmax = time.Millisecond, 2*time.Millisecond
	default:
		base, jmax = s.v.BaseRTT, s.v.Jitter
	}
	h := fnv.New64a()
	var sb [8]byte
	for i := 0; i < 8; i++ {
		sb[i] = byte(seed >> (8 * i))
	}
	h.Write(sb[:])
	h.Write([]byte(s.v.Name))
	b, _ := f.Dst.MarshalBinary()
	h.Write(b)
	p.RTT += base + time.Duration(h.Sum64()%uint64(jmax))
}

// netcondBenchResult is the BENCH_netcond.json schema.
type netcondBenchResult struct {
	Scale               float64 `json:"scale"`
	Rounds              int     `json:"rounds"`
	VisitsPerRound      int     `json:"visits_per_round"`
	FusedVisitsPerSec   float64 `json:"fused_visits_per_sec"`
	ChainVisitsPerSec   float64 `json:"chain_visits_per_sec"`
	OverheadPercent     float64 `json:"overhead_percent"`
	ImpairedProfile     string  `json:"impaired_profile"`
	ImpairedPagesPerSec float64 `json:"impaired_pages_per_sec"`
}

// BenchmarkNetcondOverhead visits one crawl leg serially through both
// implementations in alternating quads and takes the median per-round
// slowdown of the chain over the fused baseline. Both variants must
// produce identical visit outcomes — the chain is an equivalence, not
// an approximation.
func BenchmarkNetcondOverhead(b *testing.B) {
	const scale = 0.02
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, scale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	profile := hostenv.DefaultProfile(hostenv.Windows)

	chainOpts := browser.DefaultOptions()
	chainOpts.Background = false
	fusedOpts := browser.DefaultOptions()
	fusedOpts.Background = false
	fusedOpts.Conditions = &simnet.Conditions{
		Name: "nominal", FlowVantage: profile.Vantage.Name,
		Stages: []simnet.Stage{fusedNominal{v: profile.Vantage}},
	}

	// visitAll crawls every target with one browser and returns the
	// elapsed wall time plus a digest of outcomes for the parity check.
	visitAll := func(opts browser.Options) (time.Duration, uint64) {
		runtime.GC()
		h := fnv.New64a()
		br := browser.New(profile, world.Net, opts)
		start := time.Now()
		for _, tgt := range world.Targets {
			res := br.Visit(tgt.URL)
			fmt.Fprintf(h, "%s|%d|%s\n", tgt.Domain, res.CommittedAt, res.Err)
		}
		return time.Since(start), h.Sum64()
	}

	_, chainSum := visitAll(chainOpts)
	_, fusedSum := visitAll(fusedOpts)
	if chainSum != fusedSum {
		b.Fatal("chain and fused-legacy visits diverged: the nominal chain is not timing-equivalent")
	}

	const rounds = 6
	var ratios []float64
	fusedBest, chainBest := time.Duration(1<<62), time.Duration(1<<62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			// Symmetric fused,chain,chain,fused quads (mirrored on odd
			// rounds) cancel linear drift; the median across rounds
			// discards GC spikes.
			var fusedD, chainD time.Duration
			measureFused := func() {
				d, _ := visitAll(fusedOpts)
				fusedD += d
				if d < fusedBest {
					fusedBest = d
				}
			}
			measureChain := func() {
				d, _ := visitAll(chainOpts)
				chainD += d
				if d < chainBest {
					chainBest = d
				}
			}
			if r%2 == 0 {
				measureFused()
				measureChain()
				measureChain()
				measureFused()
			} else {
				measureChain()
				measureFused()
				measureFused()
				measureChain()
			}
			ratios = append(ratios, chainD.Seconds()/fusedD.Seconds())
		}
	}
	b.StopTimer()

	// The impaired variant: the same leg crawled under the harshest
	// profile, through the full crawler, for run-over-run tracking.
	impairedStart := time.Now()
	sum, err := crawler.RunWorld(crawler.Config{
		Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows,
		Scale: scale, Seed: benchSeed, Workers: 4, NetProfile: "satellite",
		SkipConnectivityCheck: true,
	}, world, store.New())
	if err != nil {
		b.Fatal(err)
	}
	impairedD := time.Since(impairedStart)

	res := netcondBenchResult{
		Scale:               scale,
		Rounds:              rounds * b.N,
		VisitsPerRound:      len(world.Targets),
		FusedVisitsPerSec:   float64(len(world.Targets)) / fusedBest.Seconds(),
		ChainVisitsPerSec:   float64(len(world.Targets)) / chainBest.Seconds(),
		ImpairedProfile:     "satellite",
		ImpairedPagesPerSec: float64(sum.Attempted) / impairedD.Seconds(),
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	res.OverheadPercent = 100 * (median - 1)
	if res.OverheadPercent < 0 {
		res.OverheadPercent = 0 // chain runs landed faster: pure noise
	}
	b.ReportMetric(res.ChainVisitsPerSec, "visits/sec")
	b.ReportMetric(res.OverheadPercent, "overhead-%")

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_netcond.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("netcond chain: fused %.0f visits/sec, chain %.0f visits/sec (%.2f%%), satellite %.0f pages/sec\n",
		res.FusedVisitsPerSec, res.ChainVisitsPerSec, res.OverheadPercent, res.ImpairedPagesPerSec)

	if res.OverheadPercent >= 5 {
		b.Fatalf("nominal chain overhead %.2f%% exceeds the 5%% budget (fused %v, chain %v)",
			res.OverheadPercent, fusedBest, chainBest)
	}
}
