// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its table/figure from a
// full-scale reproduction crawl (built once per process, ~2 minutes:
// the 2020 top-100K crawl on three OSes, the 2021 crawl on two, and the
// ~145K-page malicious crawl on three) and asserts the headline
// properties that define the experiment's "shape".
//
//	go test -bench=. -benchmem
//
// For quick iterations, -bench with -benchscale 0.01 uses a 1%
// population.
package knockandtalk_test

import (
	"flag"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	knockandtalk "github.com/knockandtalk/knockandtalk"
	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/pna"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/websim"

	"github.com/knockandtalk/knockandtalk/internal/browser"
	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

var benchScale = flag.Float64("benchscale", 1.0, "population scale for the benchmark crawls")

const benchSeed = 20210603 // the 2020 Tranco snapshot date

var (
	benchOnce  sync.Once
	benchStore *store.Store
)

// fullStore crawls all three campaigns once per process.
func fullStore(b *testing.B) *store.Store {
	b.Helper()
	benchOnce.Do(func() {
		benchStore = store.New()
		for _, crawl := range []groundtruth.CrawlID{
			groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious,
		} {
			_, err := crawler.RunAll(crawler.Config{
				Crawl: crawl, Scale: *benchScale, Seed: benchSeed,
			}, benchStore)
			if err != nil {
				panic(err)
			}
		}
	})
	return benchStore
}

func atFullScale() bool { return *benchScale >= 1 }

// --- Tables ---

func BenchmarkTable1(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table1(st)
	}
	rows := analysis.CrawlTable(st)
	if len(rows) != 8 {
		b.Fatalf("Table 1 must have 8 crawl rows, got %d", len(rows))
	}
	for _, r := range rows {
		if rate := float64(r.Successful) / float64(r.Total()); r.Crawl != groundtruth.CrawlMalicious && (rate < 0.88 || rate > 0.93) {
			b.Fatalf("%s/%s success rate %.3f outside the paper's ~90%%", r.Crawl, r.OS, rate)
		}
	}
	sink(b, out)
}

func BenchmarkTable2(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table2(st)
	}
	rows := analysis.MaliciousSummary(st)
	if len(rows) != 3 {
		b.Fatalf("Table 2 must have 3 categories, got %d", len(rows))
	}
	if atFullScale() {
		// Malware succeeds least, abuse most (the paper's ordering).
		if !(rows[0].SuccessRate["Linux"] < rows[2].SuccessRate["Linux"] &&
			rows[2].SuccessRate["Linux"] < rows[1].SuccessRate["Linux"]) {
			b.Fatalf("success-rate ordering malware < phishing < abuse violated: %+v", rows)
		}
	}
	sink(b, out)
}

func BenchmarkTable3(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table3(st, groundtruth.CrawlTop2020)
	}
	if atFullScale() {
		sites := analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost")
		win := analysis.TopN(sites, groundtruth.OSWindows, 10)
		for i, want := range groundtruth.Table3Windows2020 {
			if win[i].Domain != want {
				b.Fatalf("Table 3 Windows[%d] = %s, paper prints %s", i, win[i].Domain, want)
			}
		}
		lin := analysis.TopN(sites, groundtruth.OSLinux, 10)
		for i, want := range groundtruth.Table3LinuxMac2020 {
			if lin[i].Domain != want {
				b.Fatalf("Table 3 Linux/Mac[%d] = %s, paper prints %s", i, lin[i].Domain, want)
			}
		}
	}
	sink(b, out)
}

func BenchmarkTable4(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table4()
	}
	if !strings.Contains(out, "TeamViewer") || !strings.Contains(out, "W32.Loxbot.A") {
		b.Fatal("Table 4 registry incomplete")
	}
	sink(b, out)
}

func benchLocalhostTable(b *testing.B, crawl groundtruth.CrawlID, title string, wantSites int) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.LocalhostTable(st, crawl, title)
	}
	if atFullScale() {
		if got := len(analysis.LocalSites(st, crawl, "localhost")); got != wantSites {
			b.Fatalf("%s: %d localhost sites, paper reports %d", crawl, got, wantSites)
		}
	}
	sink(b, out)
}

func benchLANTable(b *testing.B, crawl groundtruth.CrawlID, title string, wantSites int) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.LANTable(st, crawl, title)
	}
	if atFullScale() {
		if got := len(analysis.LocalSites(st, crawl, "lan")); got != wantSites {
			b.Fatalf("%s: %d LAN sites, paper reports %d", crawl, got, wantSites)
		}
	}
	sink(b, out)
}

func BenchmarkTable5(b *testing.B) {
	benchLocalhostTable(b, groundtruth.CrawlTop2020, "Table 5", 107)
}

func BenchmarkTable6(b *testing.B) {
	benchLANTable(b, groundtruth.CrawlTop2020, "Table 6", 9)
}

func BenchmarkTable7(b *testing.B) {
	benchLocalhostTable(b, groundtruth.CrawlTop2021, "Table 7", 82)
}

func BenchmarkTable8(b *testing.B) {
	benchLocalhostTable(b, groundtruth.CrawlMalicious, "Table 8", 151)
}

func BenchmarkTable9(b *testing.B) {
	benchLANTable(b, groundtruth.CrawlMalicious, "Table 9", 9)
}

func BenchmarkTable10(b *testing.B) {
	benchLANTable(b, groundtruth.CrawlTop2021, "Table 10", 8)
}

// BenchmarkTable11 regenerates the developer-error subset of the 2020
// listing (printed separately in the paper).
func BenchmarkTable11(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		sites := analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost")
		n = analysis.ClassCounts(sites)[groundtruth.ClassDevError]
	}
	if atFullScale() && n != 45 {
		b.Fatalf("2020 developer-error sites = %d, table prints 45", n)
	}
}

// --- Figures ---

func BenchmarkFigure2(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Figure2(st, groundtruth.CrawlTop2020) + report.Figure2(st, groundtruth.CrawlMalicious)
	}
	if atFullScale() {
		sites := analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost")
		venn := analysis.Venn(sites)
		for region, want := range groundtruth.Top2020Venn {
			if venn[region] != want {
				b.Fatalf("2020 venn region %v = %d, paper reports %d", region, venn[region], want)
			}
		}
		mal := analysis.Venn(analysis.LocalSites(st, groundtruth.CrawlMalicious, "localhost"))
		for region, want := range groundtruth.MaliciousVenn {
			if mal[region] != want {
				b.Fatalf("malicious venn region %v = %d, paper reports %d", region, mal[region], want)
			}
		}
	}
	sink(b, out)
}

func BenchmarkFigure3(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.RankCDFFigure(st, groundtruth.CrawlTop2020, "Figure 3")
	}
	if atFullScale() {
		sites := analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost")
		// Ranks spread roughly uniformly: the median detected rank sits
		// mid-list, not clustered at the head.
		cdf := analysis.RankCDF(sites, groundtruth.OSWindows)
		med := analysis.Quantile(xs(cdf), 0.5)
		if med < 20000 || med > 80000 {
			b.Fatalf("median detected rank %v; Figure 3 shows a near-uniform spread", med)
		}
	}
	sink(b, out)
}

func BenchmarkFigure4(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.SchemeRollupFigure(st, groundtruth.CrawlTop2020, "Figure 4a") +
			report.SchemeRollupFigure(st, groundtruth.CrawlMalicious, "Figure 4b")
	}
	if atFullScale() {
		r := analysis.SchemeRollup(st, groundtruth.CrawlTop2020, "Windows", "localhost")
		// The paper's signature finding: WSS dominates Windows localhost
		// traffic (~60% of 664 requests).
		if frac := float64(r.ByScheme["wss"]) / float64(r.Total); frac < 0.5 {
			b.Fatalf("wss share on Windows = %.2f, paper reports ~0.74 of 664", frac)
		}
		lin := analysis.SchemeRollup(st, groundtruth.CrawlTop2020, "Linux", "localhost")
		if lin.ByScheme["http"] <= lin.ByScheme["wss"] {
			b.Fatal("Linux must be HTTP-dominated (the opposite pattern)")
		}
	}
	sink(b, out)
}

func benchDelayFigure(b *testing.B, crawl groundtruth.CrawlID, title string) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.DelayCDFFigure(st, crawl, "localhost", title) +
			report.DelayCDFFigure(st, crawl, "lan", title)
	}
	sites := analysis.LocalSites(st, crawl, "localhost")
	for _, os := range []groundtruth.OSSet{groundtruth.OSWindows, groundtruth.OSLinux} {
		for _, d := range analysis.DelaySeconds(sites, os) {
			if d < 0 || d > 20 {
				b.Fatalf("delay %.1fs outside the 20s window", d)
			}
		}
	}
	sink(b, out)
}

func BenchmarkFigure5(b *testing.B) {
	benchDelayFigure(b, groundtruth.CrawlTop2020, "Figure 5")
	if atFullScale() {
		st := fullStore(b)
		sites := analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost")
		// Medians: ~10s on Windows, ≤5s-ish on Linux/Mac; maxima ≤ 17s.
		w := analysis.Quantile(analysis.DelaySeconds(sites, groundtruth.OSWindows), 0.5)
		l := analysis.Quantile(analysis.DelaySeconds(sites, groundtruth.OSLinux), 0.5)
		if w < 7.5 || w > 12.5 {
			b.Fatalf("Windows median delay %.1fs, paper reports ~10s", w)
		}
		if l > 7 {
			b.Fatalf("Linux median delay %.1fs, paper reports ~5s", l)
		}
		if max := analysis.Quantile(analysis.DelaySeconds(sites, groundtruth.OSWindows), 1); max > 17.5 {
			b.Fatalf("Windows max delay %.1fs, paper reports ≤17s", max)
		}
	}
}

func BenchmarkFigure6(b *testing.B) { benchDelayFigure(b, groundtruth.CrawlTop2021, "Figure 6") }

func BenchmarkFigure7(b *testing.B) { benchDelayFigure(b, groundtruth.CrawlMalicious, "Figure 7") }

func BenchmarkFigure8(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.SchemeRollupFigure(st, groundtruth.CrawlTop2021, "Figure 8")
	}
	if atFullScale() {
		r := analysis.SchemeRollup(st, groundtruth.CrawlTop2021, "Windows", "localhost")
		if frac := float64(r.ByScheme["wss"]) / float64(r.Total); frac < 0.5 {
			b.Fatalf("2021 wss share on Windows = %.2f, paper reports ~0.80 of 512", frac)
		}
	}
	sink(b, out)
}

func BenchmarkFigure9(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.RankCDFFigure(st, groundtruth.CrawlTop2021, "Figure 9")
	}
	if atFullScale() {
		sites := analysis.LocalSites(st, groundtruth.CrawlTop2021, "localhost")
		totals := analysis.OSTotals(sites)
		if totals[groundtruth.OSWindows] != 82 || totals[groundtruth.OSLinux] != 48 {
			b.Fatalf("2021 per-OS totals W%d L%d, paper reports W82 L48",
				totals[groundtruth.OSWindows], totals[groundtruth.OSLinux])
		}
	}
	sink(b, out)
}

// --- Headline and extensions ---

func BenchmarkHeadline(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Headline(st, groundtruth.CrawlTop2020) +
			report.Headline(st, groundtruth.CrawlTop2021) +
			report.Headline(st, groundtruth.CrawlMalicious)
	}
	if atFullScale() {
		for _, h := range groundtruth.Headlines() {
			lh := len(analysis.LocalSites(st, h.Crawl, "localhost"))
			lan := len(analysis.LocalSites(st, h.Crawl, "lan"))
			if lh != h.Localhost || lan != h.LAN {
				b.Fatalf("%s: measured (%d, %d), paper reports (%d, %d)", h.Crawl, lh, lan, h.Localhost, h.LAN)
			}
		}
	}
	sink(b, out)
}

func BenchmarkPNADefense(b *testing.B) {
	st := fullStore(b)
	b.ResetTimer()
	var rows []pna.AuditRow
	for i := 0; i < b.N; i++ {
		rows = pna.Audit(st, groundtruth.CrawlTop2020, pna.WICGDraft)
	}
	for _, r := range rows {
		if r.Class == groundtruth.ClassNativeApp && r.Allowed != r.Requests {
			b.Fatal("native-app traffic must survive the WICG draft")
		}
		if r.Class == groundtruth.ClassFraudDetection && r.Allowed != 0 {
			b.Fatal("host-profiling scans must be blocked by the WICG draft")
		}
	}
}

// BenchmarkCrawlThroughput measures end-to-end crawl speed in pages per
// second over a fixed 5% slice of the 2020 Windows crawl, at 1, 2, 4,
// and 8 workers. The world is built once outside the timer, so the
// number isolates the visit → extract → store hot path — the
// scaling curve across the sub-benchmarks shows how far the sharded
// store and per-worker tallies let extra workers help (on a single-CPU
// host the curve is flat; the win is contention removed, not
// parallelism gained).
func BenchmarkCrawlThroughput(b *testing.B) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.05, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := crawler.Config{
				Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows,
				Scale: 0.05, Seed: benchSeed, Workers: workers,
			}
			b.ResetTimer()
			var pages int
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				sum, err := crawler.RunWorld(cfg, world, store.New())
				if err != nil {
					b.Fatal(err)
				}
				pages += sum.Attempted
				elapsed += sum.Elapsed
			}
			b.ReportMetric(float64(pages)/elapsed.Seconds(), "pages/sec")
		})
	}
}

// --- Pipeline microbenchmarks ---

func BenchmarkVisitQuietPage(b *testing.B) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.001, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	br := browser.New(hostenv.DefaultProfile(hostenv.Windows), world.Net, browser.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Visit(world.Targets[i%len(world.Targets)].URL)
	}
}

func BenchmarkVisitScanningPage(b *testing.B) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	br := browser.New(hostenv.DefaultProfile(hostenv.Windows), world.Net, browser.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Visit("https://ebay.com/")
	}
}

func BenchmarkDetect(b *testing.B) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	br := browser.New(hostenv.DefaultProfile(hostenv.Windows), world.Net, browser.DefaultOptions())
	res := br.Visit("https://ebay.com/")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(localnet.FromLog(res.Log)); got != 14 {
			b.Fatalf("findings = %d", got)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	reqs := []knockandtalk.LocalRequest{}
	for _, port := range []uint16{3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040, 7070, 63333} {
		reqs = append(reqs, knockandtalk.LocalRequest{
			Domain: "ebay.com", Scheme: "wss", Host: "localhost", Port: port, Path: "/", Dest: "localhost",
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := knockandtalk.ClassifySite(reqs); v.Class != knockandtalk.ClassFraudDetection {
			b.Fatal("misclassified")
		}
	}
}

// --- helpers ---

var benchSink string

func sink(b *testing.B, s string) {
	if s == "" {
		b.Fatal("empty report output")
	}
	benchSink = s
}

func xs(points []analysis.CDFPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.X
	}
	return out
}
