// Telemetry overhead benchmark: the crawl hot path with tracing and
// metrics fully enabled must stay within 5% of the uninstrumented
// baseline, and the uninstrumented path must not pay for the
// instrumentation at all (no stage tallies, no clock reads). The bench
// smoke emits BENCH_telemetry.json so the overhead is tracked run over
// run.
package knockandtalk_test

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// telemetryBenchResult is the BENCH_telemetry.json schema.
type telemetryBenchResult struct {
	Scale           float64 `json:"scale"`
	Workers         int     `json:"workers"`
	Rounds          int     `json:"rounds"`
	PagesPerRound   int     `json:"pages_per_round"`
	OffPagesPerSec  float64 `json:"off_pages_per_sec"`
	OnPagesPerSec   float64 `json:"on_pages_per_sec"`
	OverheadPercent float64 `json:"overhead_percent"`
	TraceRecords    uint64  `json:"trace_records"`
	TraceDropped    uint64  `json:"trace_dropped"`
}

// BenchmarkCrawlTelemetryOverhead runs the BenchmarkCrawlThroughput
// configuration twice per round — tracing off and tracing fully on
// (registry + tracer + stage timings) — in alternating order, and takes
// the median per-round slowdown ratio. It fails if full instrumentation
// costs more than 5% of crawl throughput, and writes
// BENCH_telemetry.json next to the test binary's working directory.
func BenchmarkCrawlTelemetryOverhead(b *testing.B) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.05, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	base := crawler.Config{
		Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows,
		Scale: 0.05, Seed: benchSeed, Workers: 4,
	}
	tracer := telemetry.NewTracer(io.Discard, telemetry.TracerOptions{Buffer: 4096})
	instrumented := base
	instrumented.Metrics = telemetry.NewRegistry()
	instrumented.Tracer = tracer
	instrumented.StageTimings = true

	crawlOnce := func(cfg crawler.Config) (*crawler.Summary, time.Duration) {
		runtime.GC()
		start := time.Now()
		sum, err := crawler.RunWorld(cfg, world, store.New())
		if err != nil {
			b.Fatal(err)
		}
		return sum, time.Since(start)
	}

	// Warm caches and the page-table before measuring.
	crawlOnce(base)
	crawlOnce(instrumented)

	const rounds = 8
	var pages int
	var ratios []float64
	offBest, onBest := time.Duration(1<<62), time.Duration(1<<62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			// Each round measures an off,on,on,off quad (mirrored on odd
			// rounds) and keeps the round's slowdown ratio: the symmetric
			// order cancels linear machine drift inside the round, and the
			// median across rounds discards the ones where a GC or
			// scheduler spike landed on one side.
			var offD, onD time.Duration
			measureOff := func() {
				sum, d := crawlOnce(base)
				if sum.StageBusy != nil {
					b.Fatal("uninstrumented crawl must not collect stage tallies")
				}
				pages = sum.Attempted
				offD += d
				if d < offBest {
					offBest = d
				}
			}
			measureOn := func() {
				sum, d := crawlOnce(instrumented)
				if sum.StageBusy == nil || sum.StageBusy["visit"] <= 0 {
					b.Fatalf("instrumented crawl lost its stage tallies: %+v", sum.StageBusy)
				}
				onD += d
				if d < onBest {
					onBest = d
				}
			}
			if r%2 == 0 {
				measureOff()
				measureOn()
				measureOn()
				measureOff()
			} else {
				measureOn()
				measureOff()
				measureOff()
				measureOn()
			}
			ratios = append(ratios, onD.Seconds()/offD.Seconds())
		}
	}
	b.StopTimer()
	if err := tracer.Close(); err != nil {
		b.Fatal(err)
	}

	res := telemetryBenchResult{
		Scale:          0.05,
		Workers:        base.Workers,
		Rounds:         rounds * b.N,
		PagesPerRound:  pages,
		OffPagesPerSec: float64(pages) / offBest.Seconds(),
		OnPagesPerSec:  float64(pages) / onBest.Seconds(),
		TraceRecords:   tracer.Written(),
		TraceDropped:   tracer.Dropped(),
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	res.OverheadPercent = 100 * (median - 1)
	if res.OverheadPercent < 0 {
		res.OverheadPercent = 0 // instrumented runs landed faster: pure noise
	}
	b.ReportMetric(res.OnPagesPerSec, "pages/sec")
	b.ReportMetric(res.OverheadPercent, "overhead-%")

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_telemetry.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("telemetry overhead: off %.0f pages/sec, on %.0f pages/sec (%.2f%%), %d trace records\n",
		res.OffPagesPerSec, res.OnPagesPerSec, res.OverheadPercent, res.TraceRecords)

	if tracer.Written()+tracer.Dropped() == 0 {
		b.Fatal("instrumented crawl emitted no trace records")
	}
	if res.OverheadPercent >= 5 {
		b.Fatalf("telemetry overhead %.2f%% exceeds the 5%% budget (off %v, on %v)",
			res.OverheadPercent, offBest, onBest)
	}
}
