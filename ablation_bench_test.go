// Ablation benchmarks for the design choices DESIGN.md calls out: the
// 20-second observation window (§3.1's threshold experiment), redirect-
// target detection, and browser-traffic filtering.
package knockandtalk_test

import (
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/browser"
	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/localnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// BenchmarkAblationWindow reproduces the §3.1 threshold experiment: how
// much local activity does a shorter observation window miss? The paper
// chose 20 s after finding that >98% of all requests land within 15 s.
// Fraud-detection scripts fire late (~10-16 s), so short windows lose
// precisely the anti-abuse class.
func BenchmarkAblationWindow(b *testing.B) {
	windows := []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second, 20 * time.Second}
	baseline := -1
	for _, w := range windows {
		w := w
		b.Run(w.String(), func(b *testing.B) {
			var sites int
			for i := 0; i < b.N; i++ {
				st := store.New()
				_, err := crawler.Run(crawler.Config{
					Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows,
					Scale: 0.05, Seed: benchSeed, Window: w,
				}, st)
				if err != nil {
					b.Fatal(err)
				}
				sites = len(analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost"))
			}
			if w == 20*time.Second {
				baseline = sites
			}
			b.ReportMetric(float64(sites), "localhost-sites")
		})
	}
	// With the full window restored, a 5s window must have missed the
	// late-firing fraud-detection sites.
	if baseline == 0 {
		b.Fatal("no sites detected at the full window")
	}
}

// BenchmarkAblationRedirects measures what ignoring redirect targets
// loses: the sites whose only local traffic is a Location header
// pointing at 127.0.0.1 (romadecade.org, fincaraiz.com.co).
func BenchmarkAblationRedirects(b *testing.B) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.52, benchSeed) // includes romadecade.org (rank 51142)
	if err != nil {
		b.Fatal(err)
	}
	br := browser.New(hostenv.DefaultProfile(hostenv.Windows), world.Net, browser.DefaultOptions())
	res := br.Visit("http://romadecade.org/")
	b.ResetTimer()
	var with, without int
	for i := 0; i < b.N; i++ {
		with = len(localnet.FromLog(res.Log))
		without = len(localnet.FromLogOpts(res.Log, localnet.Options{IgnoreRedirectTargets: true}))
	}
	if with != 1 || without != 0 {
		b.Fatalf("redirect ablation: with=%d without=%d; redirect detection is load-bearing", with, without)
	}
}

// BenchmarkAblationBrowserFilter measures the false positives admitted
// when browser-internal traffic is not filtered by event source: the
// browser's own loopback endpoints would be attributed to the website.
func BenchmarkAblationBrowserFilter(b *testing.B) {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.001, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	br := browser.New(hostenv.DefaultProfile(hostenv.Windows), world.Net, browser.DefaultOptions())
	res := br.Visit(world.Targets[0].URL)
	b.ResetTimer()
	var filtered, unfiltered int
	for i := 0; i < b.N; i++ {
		filtered = len(localnet.FromLog(res.Log))
		unfiltered = len(localnet.FromLogOpts(res.Log, localnet.Options{KeepBrowserTraffic: true}))
	}
	if unfiltered <= filtered {
		b.Fatalf("filter ablation: filtered=%d unfiltered=%d; the source filter must be suppressing browser noise", filtered, unfiltered)
	}
}

// BenchmarkLoginPages runs the §6 future-work experiment: landing pages
// vs. login pages over the same population. The landing-page counts the
// study reports are a lower bound; login pages reveal additional
// ThreatMetrix deployers.
func BenchmarkLoginPages(b *testing.B) {
	for _, page := range []struct {
		name string
		path string
	}{{"landing", "/"}, {"login", websim.LoginPath}} {
		page := page
		b.Run(page.name, func(b *testing.B) {
			var sites int
			for i := 0; i < b.N; i++ {
				st := store.New()
				_, err := crawler.Run(crawler.Config{
					Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows,
					Scale: 0.05, Seed: benchSeed, PagePath: page.path,
				}, st)
				if err != nil {
					b.Fatal(err)
				}
				sites = len(analysis.LocalSites(st, groundtruth.CrawlTop2020, "localhost"))
			}
			b.ReportMetric(float64(sites), "localhost-sites")
		})
	}
}

// BenchmarkHTMLPipeline compares the per-page cost of the precompiled
// fast path against the full tokenize→extract→interpret pipeline over
// the same population (results are equivalence-tested in the crawler
// package).
func BenchmarkHTMLPipeline(b *testing.B) {
	for _, mode := range []struct {
		name  string
		parse bool
	}{{"fastpath", false}, {"parsehtml", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := crawler.Config{
					Crawl: groundtruth.CrawlTop2020, OS: hostenv.Windows,
					Scale: 0.01, Seed: benchSeed, ParseHTML: mode.parse,
				}
				if _, err := crawler.Run(cfg, store.New()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
