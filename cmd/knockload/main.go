// Command knockload drives knockserved's query plane (and optionally
// its ingest plane) with a weighted endpoint mix and reports latency
// distributions the way a capacity review needs them: closed-loop for
// sustainable throughput at fixed concurrency, open-loop with
// coordinated-omission-corrected quantiles for user-visible tails, and
// a stepped-rate sweep for the throughput–latency curve.
//
// Usage:
//
//	knockload -base http://127.0.0.1:8080 -mode both -duration 10s
//	knockload -mode open -rate 500 -duration 30s -slo-p99 50ms
//	knockload -sweep 100,200,400,800 -step-duration 5s -json BENCH_load.json
//	knockload -mode closed -endpoints "site:4,summary:1" -ingest crawl.netlog.jsonl
//
// Site lookups self-seed from the server: the harness lists distinct
// domains via GET /v1/pages and rotates /v1/site/{domain} requests
// across them, so the mix exercises the real corpus rather than a
// synthetic key space. After the runs it scrapes the server's /metrics
// query section, putting client-observed (queueing included) and
// server-observed (handler-only) tails side by side in the report.
//
// With -slo-p99 set, the process exits nonzero when any endpoint's
// corrected p99 exceeds the target — the CI regression gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/loadgen"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger *slog.Logger

func main() {
	var (
		base       = flag.String("base", "http://127.0.0.1:8080", "knockserved base URL")
		mode       = flag.String("mode", "both", "load mode: closed, open, or both")
		workers    = flag.Int("workers", 16, "closed-loop concurrent workers")
		rate       = flag.Float64("rate", 200, "open-loop offered arrival rate (requests/sec)")
		duration   = flag.Duration("duration", 10*time.Second, "duration of each headline run")
		inflight   = flag.Int("inflight", 256, "open-loop cap on concurrent in-flight requests")
		sweepSpec  = flag.String("sweep", "", "comma-separated open-loop rates for the throughput-latency sweep (e.g. 100,200,400)")
		stepDur    = flag.Duration("step-duration", 5*time.Second, "duration of each sweep step")
		sloP99     = flag.Duration("slo-p99", 0, "fail (exit 1) if any endpoint's corrected p99 exceeds this (0 disables)")
		jsonOut    = flag.String("json", "", "write the machine-readable bench report (BENCH_load.json) to this path")
		mixSpec    = flag.String("endpoints", "site:4,locals:2,pages:2,summary:1", "endpoint mix as name:weight pairs (site, locals, pages, summary, ingest)")
		ingestPath = flag.String("ingest", "", "NetLog JSONL file to drive POST /v1/ingest with (enables the ingest endpoint)")
		seedLimit  = flag.Int("seed-limit", 256, "max domains to self-seed from /v1/pages for site lookups")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		traceSeed  = flag.Uint64("trace-seed", 20210603, "seed for the deterministic per-request trace IDs sent as W3C traceparent headers")
		statusAddr = flag.String("status-addr", "", "serve live /status, /healthz, and Prometheus /metrics for the run on this address")
		logFormat  = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	version := telemetry.RegisterBuildInfo(nil)

	var err error
	logger, err = health.NewLogger(*logFormat, "knockload")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockload: %v\n", err)
		os.Exit(1)
	}
	if *mode != "closed" && *mode != "open" && *mode != "both" {
		fatal("invalid -mode", "mode", *mode)
	}
	baseURL := strings.TrimRight(*base, "/")

	// The status listener exposes the harness's own telemetry while a
	// long run is in flight: the cumulative mirror registry plus a
	// health leg fed by the per-request observer.
	tracker := health.New(health.Options{})
	reg := telemetry.Default()
	if *statusAddr != "" {
		addr, stopStatus, err := health.Serve(*statusAddr, tracker, reg, logger)
		if err != nil {
			fatal("status listener", "err", err)
		}
		defer stopStatus()
		logger.Info("status listener up", "addr", addr)
	}

	domains, err := seedDomains(baseURL, *seedLimit, *timeout)
	if err != nil {
		fatal("seeding domains from /v1/pages", "base", baseURL, "err", err)
	}
	logger.Info("seeded", "base", baseURL, "domains", len(domains))

	var ingestBody []byte
	if *ingestPath != "" {
		ingestBody, err = os.ReadFile(*ingestPath)
		if err != nil {
			fatal("reading ingest payload", "err", err)
		}
	}
	endpoints, err := buildMix(*mixSpec, baseURL, domains, ingestBody)
	if err != nil {
		fatal("building endpoint mix", "err", err)
	}

	// Each run registers a leg on the tracker so /status shows live
	// progress; the observer bridges loadgen completions into it.
	var leg *health.CrawlProgress
	runner, err := loadgen.New(endpoints, loadgen.Options{
		Timeout:   *timeout,
		Registry:  reg,
		TraceSeed: *traceSeed,
		Observer: func(_ string, d time.Duration, ok bool) {
			leg.VisitDone(-1, d, ok)
		},
	})
	if err != nil {
		fatal("building runner", "err", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bench := &loadgen.Bench{BaseURL: baseURL, Version: version, GoVersion: runtime.Version()}
	if *mode == "closed" || *mode == "both" {
		leg = tracker.StartCrawl("load-closed", "load", 0, *workers)
		logger.Info("closed-loop run", "workers", *workers, "duration", *duration)
		bench.Closed, err = runner.Closed(ctx, *workers, *duration)
		leg.Finish()
		if err != nil {
			fatal("closed-loop run", "err", err)
		}
	}
	if *mode == "open" || *mode == "both" {
		total := int(rate2total(*rate, *duration))
		leg = tracker.StartCrawl("load-open", "load", total, 0)
		logger.Info("open-loop run", "rate", *rate, "duration", *duration, "inflight", *inflight)
		bench.Open, err = runner.Open(ctx, *rate, *inflight, *duration)
		leg.Finish()
		if err != nil {
			fatal("open-loop run", "err", err)
		}
	}
	if *sweepSpec != "" {
		rates, err := parseRates(*sweepSpec)
		if err != nil {
			fatal("parsing -sweep", "err", err)
		}
		leg = tracker.StartCrawl("load-sweep", "load", 0, 0)
		logger.Info("sweep", "rates", *sweepSpec, "step", *stepDur)
		points, _, err := runner.Sweep(ctx, rates, *inflight, *stepDur)
		leg.Finish()
		if err != nil {
			fatal("sweep", "err", err)
		}
		bench.Sweep = points
	}

	// The server-observed half: knockserved's serve_query_ns quantiles
	// for the same window, scraped from its /metrics query section.
	// Best-effort — an older server without the section just yields an
	// empty table.
	if server, err := scrapeServerStats(baseURL, *timeout); err != nil {
		logger.Warn("scraping server /metrics", "err", err)
	} else {
		bench.Server = server
	}

	if *sloP99 > 0 {
		bench.Gate(*sloP99)
	}
	bench.WriteText(os.Stdout)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal("writing bench report", "err", err)
		}
		if err := bench.WriteJSON(f); err != nil {
			fatal("writing bench report", "err", err)
		}
		if err := f.Close(); err != nil {
			fatal("writing bench report", "err", err)
		}
		logger.Info("bench report written", "path", *jsonOut)
	}
	if bench.SLO != nil && !bench.SLO.Pass {
		logger.Error("SLO gate failed",
			"target", *sloP99, "worst_endpoint", bench.SLO.WorstEP,
			"worst_p99", time.Duration(bench.SLO.WorstNS), "mode", bench.SLO.WorstRun)
		os.Exit(1)
	}
}

func rate2total(rate float64, d time.Duration) uint64 {
	return uint64(float64(d) / float64(time.Second) * rate)
}

// parseRates parses the -sweep spec ("100,200,400") into offered rates.
func parseRates(spec string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("empty sweep spec %q", spec)
	}
	return rates, nil
}

// seedDomains lists distinct page domains from the server so site
// lookups rotate across the real corpus. An empty store is fine — the
// site endpoint then probes a fixed nonexistent domain, which still
// exercises the 404 path.
func seedDomains(base string, limit int, timeout time.Duration) ([]string, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/v1/pages?limit=" + strconv.Itoa(limit))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/pages: status %d", resp.StatusCode)
	}
	var pages struct {
		Rows []struct {
			Domain string `json:"domain"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pages); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(pages.Rows))
	var domains []string
	for _, row := range pages.Rows {
		if row.Domain == "" || seen[row.Domain] {
			continue
		}
		seen[row.Domain] = true
		domains = append(domains, row.Domain)
	}
	if len(domains) == 0 {
		domains = []string{"unseeded.example"}
	}
	return domains, nil
}

// buildMix materializes the -endpoints spec into loadgen endpoints.
// Request builders rotate query parameters with the request index so
// the cache sees a realistic mix of repeats and variations.
func buildMix(spec, base string, domains []string, ingestBody []byte) ([]loadgen.Endpoint, error) {
	weights := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, ":")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w <= 0 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
		}
		weights[name] = w
	}
	domain := func(i uint64) string { return domains[i%uint64(len(domains))] }
	builders := map[string]func(i uint64) loadgen.Request{
		"site": func(i uint64) loadgen.Request {
			return loadgen.Request{URL: base + "/v1/site/" + url.PathEscape(domain(i))}
		},
		"locals": func(i uint64) loadgen.Request {
			// Alternate the whole listing with per-domain filters.
			if i%2 == 0 {
				return loadgen.Request{URL: base + "/v1/locals?limit=100"}
			}
			return loadgen.Request{URL: base + "/v1/locals?limit=100&domain=" + url.QueryEscape(domain(i))}
		},
		"pages": func(i uint64) loadgen.Request {
			if i%2 == 0 {
				return loadgen.Request{URL: base + "/v1/pages?limit=100"}
			}
			return loadgen.Request{URL: base + "/v1/pages?limit=100&domain=" + url.QueryEscape(domain(i))}
		},
		"summary": func(i uint64) loadgen.Request {
			return loadgen.Request{URL: base + "/v1/summary"}
		},
	}
	if ingestBody != nil {
		builders["ingest"] = func(i uint64) loadgen.Request {
			// A small rotating domain set keeps re-ingests updating
			// existing sites instead of growing the store unboundedly.
			return loadgen.Request{
				Method:      http.MethodPost,
				URL:         fmt.Sprintf("%s/v1/ingest?domain=load-%d.example&os=Windows&crawl=load", base, i%8),
				Body:        ingestBody,
				ContentType: "application/jsonl",
			}
		}
	}
	var eps []loadgen.Endpoint
	for _, name := range []string{"site", "locals", "pages", "summary", "ingest"} {
		w, wanted := weights[name]
		if !wanted {
			continue
		}
		delete(weights, name)
		build, ok := builders[name]
		if !ok {
			return nil, fmt.Errorf("endpoint %q requires -ingest", name)
		}
		eps = append(eps, loadgen.Endpoint{Name: name, Weight: w, Request: build})
	}
	for name := range weights {
		return nil, fmt.Errorf("unknown endpoint %q", name)
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("empty endpoint mix %q", spec)
	}
	return eps, nil
}

// scrapeServerStats pulls the query section out of knockserved's
// /metrics JSON snapshot.
func scrapeServerStats(base string, timeout time.Duration) (map[string]loadgen.ServerStats, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var snap struct {
		Query map[string]loadgen.ServerStats `json:"query"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return snap.Query, nil
}

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
