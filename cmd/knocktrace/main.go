// Command knocktrace inspects per-visit trace files (the JSONL span
// records knockcrawl, knockcampaign, and knockserved emit with
// -trace-out): per-stage latency summaries, slowest-visit rankings,
// per-visit waterfalls, and per-OS / per-crawl rollups.
//
// Usage:
//
//	knocktrace crawl.trace.jsonl                 # stage summary
//	knocktrace -json crawl.trace.jsonl           # same aggregation, machine-readable
//	knocktrace -top 10 crawl.trace.jsonl         # slowest visits
//	knocktrace -waterfall ebay.com crawl.trace.jsonl
//	knocktrace -by os crawl.trace.jsonl          # per-OS rollup
//	knocktrace -busy crawl.trace.jsonl           # per-stage busy seconds
//
// Trace files gzip-compress transparently (any .gz argument), and
// multiple files assemble into cross-process trees by trace ID:
//
//	knocktrace -assemble coord.trace.jsonl worker-a.trace.jsonl worker-b.trace.jsonl
//	knocktrace -assemble -waterfall top100k-2020/L/0000 coord.trace.jsonl worker-*.jsonl
//	knocktrace -trace 4bf92f35 coord.trace.jsonl worker-*.jsonl   # one causal chain, by ID prefix
//
// The -busy output renders busy seconds exactly as knockserved's
// /metrics pipeline section does, so the two agree byte-for-byte for
// identical work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger, _ = health.LoggerTo(os.Stderr, "text", "knocktrace")

func main() {
	var (
		top       = flag.Int("top", 0, "print the K slowest visits instead of the stage summary")
		waterfall = flag.String("waterfall", "", "print span waterfalls for every visit of this domain")
		by        = flag.String("by", "", "roll up per group: os or crawl")
		busy      = flag.Bool("busy", false, "print per-stage busy seconds (the /metrics agreement surface)")
		asJSON    = flag.Bool("json", false, "print the stage summary and rollups as JSON (same aggregation as the text views)")
		assemble  = flag.Bool("assemble", false, "merge all input files into cross-process trace trees by trace ID and print them")
		traceID   = flag.String("trace", "", "print one trace's causal chain with span detail, by trace ID (unambiguous hex prefixes work)")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)
	if flag.NArg() == 0 {
		fatalf("usage: knocktrace [flags] trace.jsonl [more.jsonl...]")
	}
	visits, err := telemetry.ReadTraceFiles(flag.Args()...)
	if err != nil {
		fatalf("%v", err)
	}
	if len(visits) == 0 {
		fatalf("no trace records in %s", strings.Join(flag.Args(), ", "))
	}

	w := os.Stdout
	switch {
	case *traceID != "":
		t, ok := telemetry.FindTrace(telemetry.AssembleTraces(visits), *traceID)
		if !ok {
			fatalf("trace %q: not found, or the prefix is ambiguous", *traceID)
		}
		printTree(w, t, true)
	case *assemble && *waterfall != "":
		if !printTreeWaterfalls(w, telemetry.AssembleTraces(visits), *waterfall) {
			fatalf("no assembled trace contains records of %q", *waterfall)
		}
	case *assemble:
		trees := telemetry.AssembleTraces(visits)
		if len(trees) == 0 {
			fatalf("no traced records in %s (records predate trace IDs?)", strings.Join(flag.Args(), ", "))
		}
		for _, t := range trees {
			printTree(w, t, false)
		}
	case *asJSON:
		// The JSON view is the exact same Summarize aggregation the text
		// views print — telemetry.TraceSummary.JSON keeps them in sync.
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(telemetry.Summarize(visits).JSON()); err != nil {
			fatalf("%v", err)
		}
	case *busy:
		printBusy(w, visits)
	case *top > 0:
		printSlowest(w, visits, *top)
	case *waterfall != "":
		if !printWaterfalls(w, visits, *waterfall) {
			fatalf("no visits of domain %q in the trace", *waterfall)
		}
	case *by != "":
		if *by != "os" && *by != "crawl" {
			fatalf("-by wants os or crawl, got %q", *by)
		}
		printGroups(w, visits, *by)
	default:
		printSummary(w, visits)
	}
}

// printSummary renders the default view: headline totals plus one row
// per stage with run/item counts, busy time, and latency quantiles
// from the log-scale histogram.
func printSummary(w io.Writer, visits []telemetry.VisitRecord) {
	s := telemetry.Summarize(visits)
	fmt.Fprintf(w, "%d visits (%d failed), %d events, %d findings, wall %v\n",
		s.Visits, s.Failed, s.Events, s.Findings, time.Duration(s.WallNS).Round(time.Millisecond))
	if len(s.Outcomes) > 1 {
		for _, o := range sortedKeys(s.Outcomes) {
			if o != "ok" {
				fmt.Fprintf(w, "  %-32s %d\n", o, s.Outcomes[o])
			}
		}
	}
	fmt.Fprintf(w, "%-10s %7s %9s %12s %10s %10s %10s\n",
		"stage", "runs", "items", "busy", "p50", "p90", "p99")
	for _, name := range s.StageNames() {
		st := s.Stages[name]
		h := st.Hist.Snapshot()
		fmt.Fprintf(w, "%-10s %7d %9d %12s %10s %10s %10s\n",
			name, st.Runs, st.Items, fmtNS(st.BusyNS),
			fmtNS(int64(h.Quantile(0.50))), fmtNS(int64(h.Quantile(0.90))), fmtNS(int64(h.Quantile(0.99))))
	}
}

// printBusy renders per-stage busy seconds with the same formatting
// /metrics uses for pipeline busy_seconds, so a trace file reproduces
// the serving layer's numbers exactly.
func printBusy(w io.Writer, visits []telemetry.VisitRecord) {
	s := telemetry.Summarize(visits)
	busy := s.BusySeconds()
	for _, name := range s.StageNames() {
		fmt.Fprintf(w, "%-10s %.9f\n", name, busy[name])
	}
}

// printSlowest renders the K slowest visits, slowest first.
func printSlowest(w io.Writer, visits []telemetry.VisitRecord, k int) {
	for _, v := range telemetry.SlowestVisits(visits, k) {
		fmt.Fprintf(w, "%12s  %-24s %-8s %-14s rank=%-6d events=%-5d %s\n",
			fmtNS(v.DurNS), v.Domain, v.OS, v.Crawl, v.Rank, v.Events, v.Outcome)
	}
}

// printWaterfalls renders every visit of one domain as a span
// waterfall: offset, duration, a proportional bar, and item counts.
func printWaterfalls(w io.Writer, visits []telemetry.VisitRecord, domain string) bool {
	const barWidth = 40
	found := false
	for _, v := range visits {
		if v.Domain != domain {
			continue
		}
		found = true
		fmt.Fprintf(w, "%s %s %s rank=%d events=%d outcome=%s total=%s\n",
			v.Domain, v.OS, v.Crawl, v.Rank, v.Events, v.Outcome, fmtNS(v.DurNS))
		total := v.DurNS
		if total <= 0 {
			total = 1
		}
		for _, sp := range v.Spans {
			startCol := int(sp.StartNS * barWidth / total)
			width := int(sp.DurNS * barWidth / total)
			if width < 1 {
				width = 1
			}
			if startCol > barWidth-1 {
				startCol = barWidth - 1
			}
			if startCol+width > barWidth {
				width = barWidth - startCol
			}
			bar := strings.Repeat(" ", startCol) + strings.Repeat("█", width)
			line := fmt.Sprintf("  %-10s %10s +%-10s |%-*s| items=%d",
				sp.Name, fmtNS(sp.DurNS), fmtNS(sp.StartNS), barWidth, bar, sp.Items)
			if sp.Err != "" {
				line += " err=" + sp.Err
			}
			fmt.Fprintln(w, line)
		}
	}
	return found
}

// printTree renders one assembled cross-process trace: a stable header
// line (records=, processes= — greppable by CI), the contributing
// source files, and the span tree with per-node process attribution.
// detail additionally prints each record's inner spans — the full
// causal chain -trace asks for.
func printTree(w io.Writer, t *telemetry.TraceTree, detail bool) {
	fmt.Fprintf(w, "trace %s: records=%d processes=%d wall=%s\n",
		t.ID, t.Records, t.Processes(), fmtNS(t.WallNS()))
	for _, src := range t.Sources {
		fmt.Fprintf(w, "  source %s\n", src)
	}
	for _, n := range t.Roots {
		printNode(w, n, t.StartUS, 1, detail)
	}
}

// printNode renders one trace node and recurses into its children.
func printNode(w io.Writer, n *telemetry.TraceNode, baseUS int64, depth int, detail bool) {
	v := n.Rec
	op := "visit"
	if len(v.Spans) > 0 {
		op = v.Spans[0].Name
	}
	line := fmt.Sprintf("%s└─ %-8s %-28s", strings.Repeat("  ", depth), op, v.Domain)
	line += fmt.Sprintf(" +%-9s %-9s %s", fmtNS((v.StartUS-baseUS)*1000), fmtNS(v.DurNS), v.Outcome)
	if v.Source != "" {
		line += "  src=" + v.Source
	}
	if len(v.SpanID) >= 8 {
		line += "  span=" + v.SpanID[:8]
	}
	if n.Orphan {
		line += "  [orphan: parent span not in any input]"
	}
	fmt.Fprintln(w, line)
	if detail {
		for _, sp := range v.Spans {
			fmt.Fprintf(w, "%s   · %-10s %10s +%-10s items=%d\n",
				strings.Repeat("  ", depth), sp.Name, fmtNS(sp.DurNS), fmtNS(sp.StartNS), sp.Items)
		}
	}
	for _, c := range n.Children {
		printNode(w, c, baseUS, depth+1, detail)
	}
}

// printTreeWaterfalls renders a fleet-wide waterfall for every
// assembled trace containing records of one domain (a site, or a lease
// ID for control-plane traces): every record of the trace — whichever
// process emitted it — on a shared time axis from the tree's start.
func printTreeWaterfalls(w io.Writer, trees []*telemetry.TraceTree, domain string) bool {
	const barWidth = 60
	found := false
	for _, t := range trees {
		has := false
		walkTree(t, func(n *telemetry.TraceNode) { has = has || n.Rec.Domain == domain })
		if !has {
			continue
		}
		found = true
		fmt.Fprintf(w, "trace %s: records=%d processes=%d wall=%s\n",
			t.ID, t.Records, t.Processes(), fmtNS(t.WallNS()))
		total := t.WallNS()
		if total <= 0 {
			total = 1
		}
		walkTree(t, func(n *telemetry.TraceNode) {
			v := n.Rec
			op := "visit"
			if len(v.Spans) > 0 {
				op = v.Spans[0].Name
			}
			startNS := (v.StartUS - t.StartUS) * 1000
			startCol := int(startNS * barWidth / total)
			width := int(v.DurNS * barWidth / total)
			if width < 1 {
				width = 1
			}
			if startCol > barWidth-1 {
				startCol = barWidth - 1
			}
			if startCol+width > barWidth {
				width = barWidth - startCol
			}
			bar := strings.Repeat(" ", startCol) + strings.Repeat("█", width)
			fmt.Fprintf(w, "  %-8s %-28s %10s +%-10s |%-*s| %s\n",
				op, v.Domain, fmtNS(v.DurNS), fmtNS(startNS), barWidth, bar, v.Source)
		})
	}
	return found
}

// walkTree visits every node of the tree, parents before children.
func walkTree(t *telemetry.TraceTree, fn func(*telemetry.TraceNode)) {
	var rec func(n *telemetry.TraceNode)
	rec = func(n *telemetry.TraceNode) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, r := range t.Roots {
		rec(r)
	}
}

// printGroups renders the per-OS or per-crawl rollup.
func printGroups(w io.Writer, visits []telemetry.VisitRecord, by string) {
	s := telemetry.Summarize(visits)
	groups := s.ByOS
	if by == "crawl" {
		groups = s.ByCrawl
	}
	fmt.Fprintf(w, "%-16s %7s %7s %9s %9s %12s\n", by, "visits", "failed", "events", "findings", "wall")
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := groups[name]
		fmt.Fprintf(w, "%-16s %7d %7d %9d %9d %12s\n",
			name, g.Visits, g.Failed, g.Events, g.Findings, fmtNS(g.WallNS))
	}
}

// fmtNS renders nanoseconds human-readably with millisecond-or-better
// precision, stable for column alignment.
func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
