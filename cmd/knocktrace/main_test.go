package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func sampleVisits() []telemetry.VisitRecord {
	ms := func(n int64) int64 { return (time.Duration(n) * time.Millisecond).Nanoseconds() }
	return []telemetry.VisitRecord{
		{Crawl: "top100k-2020", OS: "Windows", Domain: "slow.example", DurNS: ms(200), Outcome: "ok", Events: 40,
			Spans: []telemetry.Span{
				{Name: "visit", StartNS: 0, DurNS: ms(180), Items: 40},
				{Name: "detect", StartNS: ms(180), DurNS: ms(15), Items: 14},
				{Name: "commit", StartNS: ms(195), DurNS: ms(5)},
			}},
		{Crawl: "top100k-2020", OS: "Linux", Domain: "fast.example", DurNS: ms(50), Outcome: "ok", Events: 10,
			Spans: []telemetry.Span{
				{Name: "visit", StartNS: 0, DurNS: ms(48), Items: 10},
				{Name: "detect", StartNS: ms(48), DurNS: ms(2)},
			}},
		{Crawl: "malicious", OS: "Windows", Domain: "dead.example", DurNS: ms(10), Outcome: "ERR_NAME_NOT_RESOLVED"},
	}
}

func TestPrintSummary(t *testing.T) {
	var b strings.Builder
	printSummary(&b, sampleVisits())
	out := b.String()
	for _, want := range []string{
		"3 visits (1 failed), 50 events, 14 findings",
		"ERR_NAME_NOT_RESOLVED",
		"visit", "detect", "commit", "p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
	// Canonical stage order: visit before detect before commit.
	if vi, di := strings.Index(out, "visit"), strings.Index(out, "detect"); vi > di {
		t.Errorf("stage order wrong:\n%s", out)
	}
}

func TestPrintBusyMatchesMetricsRendering(t *testing.T) {
	var b strings.Builder
	printBusy(&b, sampleVisits())
	// detect busy = 15ms + 2ms, rendered with the exact formatting the
	// /metrics comparison uses.
	want := fmt.Sprintf("detect     %.9f\n", time.Duration(17*time.Millisecond).Seconds())
	if !strings.Contains(b.String(), want) {
		t.Errorf("busy output missing %q:\n%s", want, b.String())
	}
}

func TestPrintSlowest(t *testing.T) {
	var b strings.Builder
	printSlowest(&b, sampleVisits(), 2)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("top 2 printed %d lines:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], "slow.example") || !strings.Contains(lines[1], "fast.example") {
		t.Errorf("slowest order wrong:\n%s", b.String())
	}
}

func TestPrintWaterfalls(t *testing.T) {
	var b strings.Builder
	if !printWaterfalls(&b, sampleVisits(), "slow.example") {
		t.Fatal("waterfall found no visits")
	}
	out := b.String()
	for _, want := range []string{"slow.example", "visit", "detect", "commit", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	if printWaterfalls(&b, sampleVisits(), "nosuch.example") {
		t.Error("waterfall claimed to find an absent domain")
	}
}

func TestPrintGroups(t *testing.T) {
	var b strings.Builder
	printGroups(&b, sampleVisits(), "os")
	if !strings.Contains(b.String(), "Windows") || !strings.Contains(b.String(), "Linux") {
		t.Errorf("by-os rollup:\n%s", b.String())
	}
	b.Reset()
	printGroups(&b, sampleVisits(), "crawl")
	if !strings.Contains(b.String(), "malicious") {
		t.Errorf("by-crawl rollup:\n%s", b.String())
	}
}
