// Command knockworld inspects the synthetic web populations: overall
// shape, a single site's served document, or a Tranco snapshot export.
//
// Usage:
//
//	knockworld -crawl top100k-2020 -os Windows -scale 0.01
//	knockworld -crawl top100k-2020 -os Windows -domain ebay.com
//	knockworld -tranco 2020 -size 1000 > tranco-2020.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
	"github.com/knockandtalk/knockandtalk/internal/tranco"
	"github.com/knockandtalk/knockandtalk/internal/webdoc"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

var logger, _ = health.LoggerTo(os.Stderr, "text", "knockworld")

func main() {
	var (
		crawlName = flag.String("crawl", "top100k-2020", "campaign to build")
		osName    = flag.String("os", "Windows", "OS variant of the world")
		scale     = flag.Float64("scale", 0.01, "population scale in (0, 1]")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		domain    = flag.String("domain", "", "dump one site's served document")
		asHTML    = flag.Bool("html", false, "with -domain: emit the page as rendered HTML instead of steps")
		trancoYr  = flag.String("tranco", "", "export a Tranco snapshot (2020 or 2021) as CSV and exit")
		size      = flag.Int("size", tranco.DefaultSize, "snapshot size for -tranco")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	if *trancoYr != "" {
		var snap *tranco.Snapshot
		var err error
		switch *trancoYr {
		case "2020":
			snap, err = tranco.Snapshot2020(*size)
		case "2021":
			snap, err = tranco.Snapshot2021(*size)
		default:
			fatalf("unknown snapshot year %q", *trancoYr)
		}
		if err != nil {
			fatalf("%v", err)
		}
		if err := snap.WriteCSV(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	osv, err := hostenv.ParseOS(*osName)
	if err != nil {
		fatalf("%v", err)
	}
	world, err := websim.Build(groundtruth.CrawlID(*crawlName), osv, *scale, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	if *domain != "" {
		dump(world, *domain, *asHTML)
		return
	}
	fmt.Printf("world: crawl=%s os=%s scale=%.3f\n", world.Crawl, world.OS, world.Scale)
	fmt.Printf("targets: %d\n", len(world.Targets))
	fmt.Printf("registered DNS names: %d\n", world.Net.Resolver.Len())
	fmt.Printf("hosts: %d\n", world.Net.NumHosts())
	byCat := map[string]int{}
	for _, t := range world.Targets {
		byCat[string(t.Category)]++
	}
	for cat, n := range byCat {
		if cat == "" {
			cat = "(top list)"
		}
		fmt.Printf("  %-12s %d\n", cat, n)
	}
}

func dump(world *websim.World, domain string, asHTML bool) {
	addrs, nerr := world.Net.Resolver.Resolve(domain)
	if nerr.IsFailure() {
		fmt.Printf("%s: %s\n", domain, nerr)
		return
	}
	fmt.Printf("%s → %v\n", domain, addrs)
	for _, port := range []uint16{443, 80} {
		ep := world.Net.Locate(addrs[0], port)
		fmt.Printf("  port %d: %s\n", port, ep.Outcome)
		if ep.Service == nil {
			continue
		}
		resp := ep.Service.Serve(&simnet.Request{
			Scheme: schemeFor(port), Host: domain, Port: port, Path: "/",
			UserAgent: world.OS.UserAgent(),
		})
		fmt.Printf("    status %d", resp.Status)
		if resp.Location != "" {
			fmt.Printf(" → %s", resp.Location)
		}
		fmt.Println()
		if page, ok := resp.Document.(*webdoc.Page); ok {
			if asHTML {
				os.Stdout.Write(websim.RenderHTML(page))
				return
			}
			for _, s := range page.SortedSteps() {
				fmt.Printf("    +%-8s %-60s %s\n", s.At.Round(1e6), s.URL, s.Initiator)
			}
		}
	}
}

func schemeFor(port uint16) simnet.Scheme {
	if port == 443 {
		return simnet.SchemeHTTPS
	}
	return simnet.SchemeHTTP
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
