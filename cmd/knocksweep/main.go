// Command knocksweep runs the detection-degradation sweep: the same
// deterministic campaign crawled once per network-condition profile,
// each run's stores scored against the embedded ground truth, and the
// decay in detection and classification rates rendered as one table.
//
// The nominal leg is byte-identical to a plain knockcampaign run — its
// stores hash-match testdata/golden/stores.sha256 at the golden scale
// and seed — so the sweep doubles as a parity check.
//
// Usage:
//
//	knocksweep -out ./sweep -scale 0.02 -seed 20210603
//	knocksweep -out ./sweep -profiles nominal,mobile-3g,satellite
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/analysis"
	"github.com/knockandtalk/knockandtalk/internal/campaign"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger *slog.Logger

// sweepCrawls is the canonical crawl order, matching the golden stores.
var sweepCrawls = []groundtruth.CrawlID{
	groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious,
}

func main() {
	var (
		out      = flag.String("out", "", "output directory; one subdirectory of stores per profile, plus degradation.txt and sweep.json")
		scale    = flag.Float64("scale", 0.02, "population scale in (0, 1]")
		seed     = flag.Uint64("seed", 20210603, "deterministic seed, shared by every profile's run")
		workers  = flag.Int("workers", 0, "concurrent browser instances per leg (0 = GOMAXPROCS)")
		profiles = flag.String("profiles", strings.Join(simnet.SweepOrder, ","),
			"comma-separated network-condition profiles to sweep, first is the baseline")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	var err error
	logger, err = health.NewLogger(*logFormat, "knocksweep")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knocksweep: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fatal("-out is required")
	}
	names := strings.Split(*profiles, ",")
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
		if _, err := simnet.ProfileByName(names[i]); err != nil {
			fatal("bad -profiles", "err", err)
		}
	}

	stores := map[string]*store.Store{}
	start := time.Now()
	for _, name := range names {
		dir := filepath.Join(*out, name)
		spec := campaign.Spec{
			Name: "netcond-sweep/" + name, OutDir: dir,
			Scale: *scale, Seed: *seed, Workers: *workers,
			// Retention on: the goldens were produced with it, so the
			// nominal leg stays hash-comparable to stores.sha256.
			RetainLogs: true,
			NetProfile: name,
			Logger:     logger,
		}
		legStart := time.Now()
		m, err := campaign.Run(spec)
		if err != nil {
			fatal("profile run failed", "profile", name, "err", err)
		}
		st := store.New()
		paths := make([]string, 0, len(m.Stores))
		for _, crawl := range sweepCrawls {
			if p, ok := m.Stores[string(crawl)]; ok {
				paths = append(paths, p)
			}
		}
		if err := st.LoadFiles(paths...); err != nil {
			fatal("loading profile stores", "profile", name, "err", err)
		}
		stores[name] = st
		fmt.Printf("%-24s crawled in %v\n", name, time.Since(legStart).Round(time.Millisecond))
	}

	outcomes := analysis.Degradation(names, stores, sweepCrawls)
	table := report.DegradationTable(outcomes)
	fmt.Println()
	fmt.Print(table)
	if err := os.WriteFile(filepath.Join(*out, "degradation.txt"), []byte(table), 0o644); err != nil {
		fatal("writing degradation.txt", "err", err)
	}
	raw, err := json.MarshalIndent(outcomes, "", "  ")
	if err != nil {
		fatal("encoding sweep.json", "err", err)
	}
	if err := os.WriteFile(filepath.Join(*out, "sweep.json"), append(raw, '\n'), 0o644); err != nil {
		fatal("writing sweep.json", "err", err)
	}
	fmt.Printf("\nsweep over %d profiles finished in %v; outputs in %s\n",
		len(names), time.Since(start).Round(time.Millisecond), *out)
}

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
