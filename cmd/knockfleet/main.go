// Command knockfleet coordinates a distributed crawl campaign: it
// partitions the campaign world into leases — contiguous domain ranges
// per (crawl, OS) leg — serves them to knockworker processes over an
// HTTP control plane, append-merges uploaded shard stores with
// idempotent dedup, and journals every lease transition so a killed
// coordinator resumes the campaign with -resume. The merged stores are
// byte-identical to a single-process knockcampaign run of the same
// parameters, whatever the fleet's interleaving or failures.
//
// Usage:
//
//	knockfleet  -out ./run -listen :7090 -scale 1 -seed 20210603 -retain
//	knockworker -coordinator http://coordinator:7090 -name worker-1 &
//	knockworker -coordinator http://coordinator:7090 -name worker-2 &
//	curl http://coordinator:7090/v1/fleet/status   # live fleet view
//	knockfleet  -out ./run -listen :7090 -resume   # continue after a crash
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/fleet"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func main() {
	var (
		out          = flag.String("out", "", "output directory for the lease journal, merged stores, and manifest")
		listen       = flag.String("listen", ":7090", "control-plane listen address")
		name         = flag.String("name", "knockandtalk-fleet", "campaign name")
		crawls       = flag.String("crawls", "", "comma-separated crawl subset (default: all three)")
		scale        = flag.Float64("scale", 1.0, "population scale in (0, 1]")
		seed         = flag.Uint64("seed", 20210603, "deterministic seed")
		retain       = flag.Bool("retain", false, "retain raw NetLog captures for local-activity visits")
		netProfile   = flag.String("net-profile", "", "network-condition profile for every lease (nominal, residential-congested, mobile-3g, satellite, lossy-wifi, ...); empty = nominal")
		leaseTargets = flag.Int("lease-targets", 64, "maximum targets per lease")
		ttl          = flag.Duration("ttl", time.Minute, "lease renewal deadline; a silent worker past this is declared dead")
		resume       = flag.Bool("resume", false, "resume an interrupted fleet campaign in -out")
		maxUpload    = flag.Int64("max-upload-bytes", 256<<20, "shard upload bound (wire bytes and decompressed stream)")
		drain        = flag.Duration("drain", 3*time.Second, "keep answering done to worker polls this long after completion, so idle workers exit cleanly")
		traceOut     = flag.String("trace-out", "", "write the coordinator's side of the campaign's distributed trace (campaign root, lease grants, control-plane spans) as JSONL to this path; assemble with worker traces via knocktrace -assemble")
		logFormat    = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	logger, err := health.NewLogger(*logFormat, "knockfleet")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockfleet: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, kv ...any) {
		logger.Error(msg, kv...)
		os.Exit(1)
	}
	if *out == "" {
		fatal("-out is required")
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal("creating trace file", "path", *traceOut, "err", err)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, telemetry.TracerOptions{Registry: telemetry.Default()})
	}
	cfg := fleet.Config{
		Name: *name, OutDir: *out,
		Scale: *scale, Seed: *seed, RetainLogs: *retain,
		NetProfile:   *netProfile,
		LeaseTargets: *leaseTargets, TTL: *ttl, Resume: *resume,
		MaxUploadBytes: *maxUpload,
		Health:         health.New(health.Options{}),
		Metrics:        telemetry.Default(),
		Tracer:         tracer,
		Logger:         logger,
	}
	if *crawls != "" {
		for _, c := range strings.Split(*crawls, ",") {
			cfg.Crawls = append(cfg.Crawls, groundtruth.CrawlID(strings.TrimSpace(c)))
		}
	}
	c, err := fleet.New(cfg)
	if err != nil {
		fatal("starting coordinator", "err", err)
	}
	defer c.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("control-plane listener", "addr", *listen, "err", err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal("control plane", "err", err)
		}
	}()
	logger.Info("fleet coordinating", "addr", ln.Addr().String(), "out", *out,
		"scale", *scale, "seed", *seed, "lease_targets", *leaseTargets, "ttl", *ttl)

	<-c.Done()
	// Write outputs while still serving: workers polling for more work
	// keep getting a clean "done" answer until the drain window closes,
	// instead of a torn-down listener they cannot tell from a crash.
	m, err := c.WriteOutputs()
	if err != nil {
		fatal("writing outputs", "err", err)
	}
	time.Sleep(*drain)
	srv.Close()
	if err := c.Close(); err != nil {
		fatal("closing coordinator", "err", err)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal("writing trace", "err", err)
		}
		logger.Info("trace written", "path", *traceOut,
			"records", tracer.Written(), "dropped", tracer.Dropped())
	}
	for _, e := range m.Entries {
		fmt.Printf("%-14s %-8s attempted=%-7d ok=%-7d failed=%-6d local=%-5d\n",
			e.Crawl, e.OS, e.Attempted, e.Successful, e.Failed, e.LocalRequests)
	}
	fmt.Printf("fleet: %d leases, %d workers, %d reassignments, %d duplicate visits deduped\n",
		len(m.Fleet.Leases), len(m.Fleet.Workers), m.Fleet.Reassignments, m.Fleet.DuplicateVisits)
	fmt.Printf("manifest: %s\n", *out+"/manifest.json")
}
