// Command knockreport regenerates the paper's tables and figures from
// stored crawl telemetry.
//
// Usage:
//
//	knockreport -in 2020.jsonl,2021.jsonl,mal.jsonl
//	knockreport -in crawl.jsonl -only table1,figure2
//	knockreport -in run/top100k-2020.jsonl -manifest run   # + crawl-ops section
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/campaign"
	"github.com/knockandtalk/knockandtalk/internal/fleet"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger *slog.Logger

func main() {
	var (
		in       = flag.String("in", "", "comma-separated JSONL store paths")
		only     = flag.String("only", "", "comma-separated subset (table1..table11, figure2..figure9, headline, longitudinal, skew, pna)")
		csvDir   = flag.String("csvdir", "", "also write figure series as CSV files into this directory")
		manifest = flag.String("manifest", "", "campaign directory whose manifest.json adds the crawl-operations section (retention errors, resume skips)")
		logFmt   = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	var err error
	logger, err = health.NewLogger(*logFmt, "knockreport")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockreport: %v\n", err)
		os.Exit(1)
	}
	if *in == "" {
		fatal("-in is required")
	}
	st := store.New()
	var paths []string
	for _, path := range strings.Split(*in, ",") {
		paths = append(paths, strings.TrimSpace(path))
	}
	if err := st.LoadFiles(paths...); err != nil {
		fatal("loading stores", "err", err)
	}

	// The report machinery registers a shared site index for the store;
	// release it once every section has rendered.
	defer pipeline.ReleaseIndex(st)
	w := bufio.NewWriter(os.Stdout)
	report.WriteAll(w, st, report.ParseSections(*only))
	if *manifest != "" {
		// fleet.LoadManifest reads both manifest kinds: a plain campaign
		// manifest parses with a nil Fleet section.
		m, err := fleet.LoadManifest(*manifest)
		if err != nil {
			w.Flush()
			fatal("loading manifest", "dir", *manifest, "err", err)
		}
		writeOperations(w, &m.Manifest)
		if m.Fleet != nil {
			writeFleet(w, m.Fleet)
		}
	}
	w.Flush()

	if *csvDir != "" {
		writeCSVs(st, *csvDir)
	}
}

// writeOperations renders the crawl-operations section from a campaign
// manifest: the telemetry gaps (NetLog retention errors) and resume
// skips the store itself cannot show, because failed retentions leave
// no record behind.
func writeOperations(w io.Writer, m *campaign.Manifest) {
	fmt.Fprintf(w, "\n== Crawl operations (campaign %q) ==\n", m.Name)
	fmt.Fprintf(w, "%-14s %-8s %-22s %9s %10s %15s %13s\n",
		"crawl", "os", "profile", "attempted", "failed", "retention-errs", "resume-skips")
	var totalAttempted, totalRetention, totalResumed int
	for _, e := range m.Entries {
		profile := e.NetProfile
		if profile == "" {
			profile = "nominal"
		}
		fmt.Fprintf(w, "%-14s %-8s %-22s %9d %10d %15d %13d\n",
			e.Crawl, e.OS, profile, e.Attempted, e.Failed, e.RetentionErrors, e.AlreadyDone)
		totalAttempted += e.Attempted
		totalRetention += e.RetentionErrors
		totalResumed += e.AlreadyDone
	}
	if totalAttempted > 0 {
		fmt.Fprintf(w, "retention errors: %d across %d attempted visits (%.3f%%)\n",
			totalRetention, totalAttempted, 100*float64(totalRetention)/float64(totalAttempted))
	}
	if totalResumed > 0 {
		fmt.Fprintf(w, "resume skips: %d targets already held by a prior run\n", totalResumed)
	}
}

// writeFleet renders the distribution record of a fleet campaign: which
// worker completed each lease, how often leases were reassigned after
// TTL deaths, and how long shard uploads took.
func writeFleet(w io.Writer, f *fleet.Info) {
	fmt.Fprintf(w, "\n== Fleet distribution ==\n")
	fmt.Fprintf(w, "workers: %s\n", strings.Join(f.Workers, ", "))
	fmt.Fprintf(w, "lease size: %d targets, ttl: %.0fs\n", f.LeaseTargets, f.TTLSeconds)
	if f.Expiries > 0 || f.Reassignments > 0 {
		fmt.Fprintf(w, "failures: %d lease expiries, %d reassignments, %d duplicate visits deduped\n",
			f.Expiries, f.Reassignments, f.DuplicateVisits)
	}
	fmt.Fprintf(w, "%-22s %-14s %-8s %8s %-26s %-14s %7s %9s\n",
		"lease", "crawl", "os", "targets", "range", "worker", "reassign", "upload")
	var uploadMS float64
	for _, l := range f.Leases {
		rng := l.FirstDomain
		if l.LastDomain != l.FirstDomain {
			rng += ".." + l.LastDomain
		}
		if len(rng) > 26 {
			rng = rng[:23] + "..."
		}
		fmt.Fprintf(w, "%-22s %-14s %-8s %8d %-26s %-14s %7d %8.0fms\n",
			l.ID, l.Crawl, l.OS, l.Targets, rng, l.Worker, l.Reassignments, l.UploadMS)
		uploadMS += l.UploadMS
	}
	if n := len(f.Leases); n > 0 {
		fmt.Fprintf(w, "uploads: %.0fms total, %.1fms mean across %d leases\n",
			uploadMS, uploadMS/float64(n), n)
	}
}

func writeCSVs(st *store.Store, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal("creating csv dir", "dir", dir, "err", err)
	}
	files := report.CSVSeries(st)
	for name, body := range files {
		if err := os.WriteFile(dir+"/"+name, []byte(body), 0o644); err != nil {
			fatal("writing csv", "name", name, "err", err)
		}
	}
	fmt.Printf("wrote %d CSV series to %s\n", len(files), dir)
}

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
