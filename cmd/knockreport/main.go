// Command knockreport regenerates the paper's tables and figures from
// stored crawl telemetry.
//
// Usage:
//
//	knockreport -in 2020.jsonl,2021.jsonl,mal.jsonl
//	knockreport -in crawl.jsonl -only table1,figure2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/pna"
	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func main() {
	var (
		in     = flag.String("in", "", "comma-separated JSONL store paths")
		only   = flag.String("only", "", "comma-separated subset (table1..table11, figure2..figure9, headline, longitudinal, skew, pna)")
		csvDir = flag.String("csvdir", "", "also write figure series as CSV files into this directory")
	)
	flag.Parse()
	if *in == "" {
		fatalf("-in is required")
	}
	st := store.New()
	for _, path := range strings.Split(*in, ",") {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			fatalf("opening %s: %v", path, err)
		}
		if err := st.Load(f); err != nil {
			fatalf("loading %s: %v", path, err)
		}
		f.Close()
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	show := func(key string) bool { return len(want) == 0 || want[key] }
	section := func(key, body string) {
		if show(key) && body != "" {
			fmt.Println(body)
		}
	}

	t2020, t2021, mal := groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious

	if show("headline") {
		for _, crawl := range []groundtruth.CrawlID{t2020, t2021, mal} {
			fmt.Print(report.Headline(st, crawl))
		}
		fmt.Println()
	}
	section("table1", report.Table1(st))
	section("table2", report.Table2(st))
	section("table3", report.Table3(st, t2020))
	section("table4", report.Table4())
	section("table5", report.LocalhostTable(st, t2020, "Table 5+11: Website localhost requests, 2020 top-100K crawl"))
	section("table6", report.LANTable(st, t2020, "Table 6: Website LAN requests, 2020 top-100K crawl"))
	section("table7", report.LocalhostTable(st, t2021, "Table 7: Website localhost requests, 2021 top-100K crawl"))
	section("table8", report.LocalhostTable(st, mal, "Table 8: Localhost requests, malicious webpages"))
	section("table9", report.LANTable(st, mal, "Table 9: LAN requests, malicious webpages"))
	section("table10", report.LANTable(st, t2021, "Table 10: Website LAN requests, 2021 top-100K crawl"))
	section("figure2", report.Figure2(st, t2020)+"\n"+report.Figure2(st, mal))
	section("figure3", report.RankCDFFigure(st, t2020, "Figure 3: Rank CDF of localhost-active domains (2020)"))
	section("figure4", report.SchemeRollupFigure(st, t2020, "Figure 4a: Localhost protocols/ports (2020 top-100K)")+
		"\n"+report.SchemeRollupFigure(st, mal, "Figure 4b: Localhost protocols/ports (malicious)"))
	section("figure5", report.DelayCDFFigure(st, t2020, "localhost", "Figure 5a: Delay to first localhost request (2020)")+
		"\n"+report.DelayCDFFigure(st, t2020, "lan", "Figure 5b: Delay to first LAN request (2020)"))
	section("figure6", report.DelayCDFFigure(st, t2021, "localhost", "Figure 6a: Delay to first localhost request (2021)")+
		"\n"+report.DelayCDFFigure(st, t2021, "lan", "Figure 6b: Delay to first LAN request (2021)"))
	section("figure7", report.DelayCDFFigure(st, mal, "localhost", "Figure 7a: Delay to first localhost request (malicious)")+
		"\n"+report.DelayCDFFigure(st, mal, "lan", "Figure 7b: Delay to first LAN request (malicious)"))
	section("figure8", report.SchemeRollupFigure(st, t2021, "Figure 8: Localhost protocols/ports (2021 top-100K)"))
	section("figure9", report.RankCDFFigure(st, t2021, "Figure 9: Rank CDF of localhost-active domains (2021)"))

	if show("skew") {
		for _, crawl := range []groundtruth.CrawlID{t2020, t2021, mal} {
			fmt.Println(report.OSSkewAndSOP(st, crawl))
		}
	}
	if show("longitudinal") {
		fmt.Println(report.Longitudinal(st, "localhost"))
		fmt.Println(report.Longitudinal(st, "lan"))
	}
	if *csvDir != "" {
		writeCSVs(st, *csvDir)
	}
	if show("pna") {
		fmt.Println("PNA defense audit (§5.3, WICG draft)")
		fmt.Println("====================================")
		for _, crawl := range []groundtruth.CrawlID{t2020, t2021, mal} {
			rows := pna.Audit(st, crawl, pna.WICGDraft)
			if len(rows) == 0 {
				continue
			}
			fmt.Printf("%s:\n", crawl)
			for _, r := range rows {
				fmt.Printf("  %-20s sites=%-4d requests=%-5d allowed=%-5d blocked(insecure)=%-4d blocked(no-opt-in)=%d\n",
					r.Class, r.Sites, r.Requests, r.Allowed, r.BlockedInsecure, r.BlockedNoOptIn)
			}
		}
	}
}

func writeCSVs(st *store.Store, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("creating %s: %v", dir, err)
	}
	files := map[string]string{
		"figure2-2020-venn.csv":             report.VennCSV(st, groundtruth.CrawlTop2020),
		"figure2-malicious-venn.csv":        report.VennCSV(st, groundtruth.CrawlMalicious),
		"figure3-rank-cdf-2020.csv":         report.RankCDFCSV(st, groundtruth.CrawlTop2020),
		"figure9-rank-cdf-2021.csv":         report.RankCDFCSV(st, groundtruth.CrawlTop2021),
		"figure4-rollup-2020.csv":           report.RollupCSV(st, groundtruth.CrawlTop2020),
		"figure4-rollup-malicious.csv":      report.RollupCSV(st, groundtruth.CrawlMalicious),
		"figure8-rollup-2021.csv":           report.RollupCSV(st, groundtruth.CrawlTop2021),
		"figure5-delay-2020-local.csv":      report.DelayCDFCSV(st, groundtruth.CrawlTop2020, "localhost"),
		"figure5-delay-2020-lan.csv":        report.DelayCDFCSV(st, groundtruth.CrawlTop2020, "lan"),
		"figure6-delay-2021-local.csv":      report.DelayCDFCSV(st, groundtruth.CrawlTop2021, "localhost"),
		"figure6-delay-2021-lan.csv":        report.DelayCDFCSV(st, groundtruth.CrawlTop2021, "lan"),
		"figure7-delay-malicious-local.csv": report.DelayCDFCSV(st, groundtruth.CrawlMalicious, "localhost"),
		"figure7-delay-malicious-lan.csv":   report.DelayCDFCSV(st, groundtruth.CrawlMalicious, "lan"),
	}
	for name, body := range files {
		if err := os.WriteFile(dir+"/"+name, []byte(body), 0o644); err != nil {
			fatalf("writing %s: %v", name, err)
		}
	}
	fmt.Printf("wrote %d CSV series to %s\n", len(files), dir)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knockreport: "+format+"\n", args...)
	os.Exit(1)
}
