// Command knockreport regenerates the paper's tables and figures from
// stored crawl telemetry.
//
// Usage:
//
//	knockreport -in 2020.jsonl,2021.jsonl,mal.jsonl
//	knockreport -in crawl.jsonl -only table1,figure2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/knockandtalk/knockandtalk/internal/report"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func main() {
	var (
		in     = flag.String("in", "", "comma-separated JSONL store paths")
		only   = flag.String("only", "", "comma-separated subset (table1..table11, figure2..figure9, headline, longitudinal, skew, pna)")
		csvDir = flag.String("csvdir", "", "also write figure series as CSV files into this directory")
	)
	flag.Parse()
	if *in == "" {
		fatalf("-in is required")
	}
	st := store.New()
	var paths []string
	for _, path := range strings.Split(*in, ",") {
		paths = append(paths, strings.TrimSpace(path))
	}
	if err := st.LoadFiles(paths...); err != nil {
		fatalf("%v", err)
	}

	w := bufio.NewWriter(os.Stdout)
	report.WriteAll(w, st, report.ParseSections(*only))
	w.Flush()

	if *csvDir != "" {
		writeCSVs(st, *csvDir)
	}
}

func writeCSVs(st *store.Store, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("creating %s: %v", dir, err)
	}
	files := report.CSVSeries(st)
	for name, body := range files {
		if err := os.WriteFile(dir+"/"+name, []byte(body), 0o644); err != nil {
			fatalf("writing %s: %v", name, err)
		}
	}
	fmt.Printf("wrote %d CSV series to %s\n", len(files), dir)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knockreport: "+format+"\n", args...)
	os.Exit(1)
}
