// Command knockdiff prints the reproduction scorecard: every published
// aggregate of the paper next to the value measured from a telemetry
// store, with a pass/fail verdict per metric.
//
// Usage:
//
//	knockdiff -in 2020.jsonl,2021.jsonl,mal.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/paperdiff"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger, _ = health.LoggerTo(os.Stderr, "text", "knockdiff")

func main() {
	in := flag.String("in", "", "comma-separated JSONL store paths")
	failOnly := flag.Bool("failures", false, "print only failing metrics")
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)
	if *in == "" {
		fatalf("-in is required")
	}
	st := store.New()
	for _, path := range strings.Split(*in, ",") {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			fatalf("opening %s: %v", path, err)
		}
		if err := st.Load(f); err != nil {
			fatalf("loading %s: %v", path, err)
		}
		f.Close()
	}

	sc := paperdiff.Compare(st)
	// Compare registers a shared site index for the store; drop it now
	// that the scorecard is built.
	pipeline.ReleaseIndex(st)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STATUS\tFIDELITY\tMETRIC\tPAPER\tMEASURED")
	for _, r := range sc.Rows {
		if *failOnly && r.OK {
			continue
		}
		status := "ok"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", status, r.Metric, r.Name, r.Paper, r.Measured)
	}
	tw.Flush()
	fmt.Printf("\n%d metrics: %d ok, %d failing\n", len(sc.Rows), sc.Passed(), sc.Failed())
	if sc.Failed() > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
