// Command knockserved serves crawl telemetry over HTTP: concurrent
// JSON queries over mounted stores plus live ingestion of NetLog event
// streams through the same detection pipeline the offline crawler
// runs.
//
// Usage:
//
//	knockserved -in run/top100k-2020.jsonl,run/top100k-2021.jsonl
//	knockserved -in crawl.jsonl -addr :8080 -save live.jsonl
//	knockserved -in crawl.jsonl -wal-dir ./live.wal   # durable ingest: crash-safe, remounts on restart
//
// Endpoints:
//
//	GET  /v1/locals?domain=&dest=&os=&crawl=&limit=   local-request records
//	GET  /v1/pages?domain=&os=&crawl=&err=&limit=     page records
//	GET  /v1/site/{domain}                            per-site report + verdicts
//	GET  /v1/summary                                  corpus summary
//	POST /v1/ingest?domain=&os=&crawl=&...            NetLog JSONL stream in, detections out
//	GET  /metrics                                     operational counters (JSON)
//
// The -debug-addr listener additionally carries the operations plane:
// /status (live progress + alerts), /healthz (readiness), /metrics
// (Prometheus text exposition), /metrics.json (raw registry snapshot),
// pprof, and expvar.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/serve"
	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger *slog.Logger

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		in        = flag.String("in", "", "comma-separated JSONL store paths to mount (optional)")
		save      = flag.String("save", "", "write the store (including ingested telemetry) to this path on shutdown")
		queryConc = flag.Int("query-concurrency", 64, "max simultaneous query requests before 429")
		ingConc   = flag.Int("ingest-concurrency", 4, "max simultaneous ingest uploads before 429")
		queryTO   = flag.Duration("query-timeout", 10*time.Second, "per-query deadline")
		ingTO     = flag.Duration("ingest-timeout", 60*time.Second, "per-upload deadline")
		cacheN    = flag.Int("cache", 512, "response cache entries (negative disables)")
		walDir    = flag.String("wal-dir", "", "durable WAL directory: ingested telemetry is journaled and checkpointed; a prior run found there is remounted instead of -in")
		drainTO   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		debugAddr = flag.String("debug-addr", "", "serve /status, /healthz, Prometheus /metrics, pprof, and expvar on this address (e.g. 127.0.0.1:6060)")
		traceOut  = flag.String("trace-out", "", "write one JSONL trace record per ingested visit to this path (inspect with knocktrace)")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	var err error
	logger, err = health.NewLogger(*logFormat, "knockserved")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockserved: %v\n", err)
		os.Exit(1)
	}

	// The tracker exists for the process lifetime; readiness is held
	// false until the service listener is up and cleared again at drain,
	// so /healthz tracks whether this instance should receive traffic.
	tracker := health.New(health.Options{})
	tracker.SetReady(false)

	st := store.New()
	var lg *store.Log
	if *walDir != "" {
		// Durable serving: ingested telemetry commits through the WAL, so
		// a crashed instance restarts with everything it had accepted. A
		// directory that replays records is the source of truth and the
		// -in exports are skipped; an empty one is seeded from -in (the
		// load is journaled, making the WAL self-contained).
		var rec store.Recovery
		st, lg, rec, err = store.Open(*walDir, store.LogOptions{})
		if err != nil {
			fatal("opening wal", "dir", *walDir, "err", err)
		}
		if n := rec.SegmentRecords + rec.WALRecords; n > 0 {
			// The journal is the source of truth and -in is skipped; say
			// so loudly (Warn on a truncated tail) so a partial remount is
			// visible rather than silently serving a smaller corpus.
			lvl := slog.LevelInfo
			if rec.Truncated {
				lvl = slog.LevelWarn
			}
			logger.Log(context.Background(), lvl, "wal recovered, serving journal instead of -in",
				"dir", *walDir, "records", n, "segments", rec.Segments,
				"segment_records", rec.SegmentRecords, "wal_records", rec.WALRecords,
				"truncated_tail", rec.Truncated, "tail_err", rec.TailErr)
			*in = ""
		}
	}
	if *in != "" {
		var paths []string
		for _, p := range strings.Split(*in, ",") {
			paths = append(paths, strings.TrimSpace(p))
		}
		if err := st.LoadFiles(paths...); err != nil {
			fatal("loading stores", "err", err)
		}
		if lg != nil {
			// The seed load was journaled through the WAL's buffered
			// writer; make it durable before serving. Otherwise a crash
			// before the first ticker checkpoint leaves a partial journal
			// that a restart would silently prefer over the full -in
			// export.
			if err := lg.Checkpoint(); err != nil {
				fatal("checkpointing seeded wal", "dir", *walDir, "err", err)
			}
			logger.Info("wal seeded from -in", "dir", *walDir,
				"pages", st.NumPages(), "locals", st.NumLocals(), "netlogs", st.NumNetLogs())
		}
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal("creating trace file", "path", *traceOut, "err", err)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, telemetry.TracerOptions{Registry: telemetry.Default()})
	}
	eng := queryengine.New(st)
	srv := serve.New(eng, serve.Options{
		QueryConcurrency:  *queryConc,
		IngestConcurrency: *ingConc,
		QueryTimeout:      *queryTO,
		IngestTimeout:     *ingTO,
		CacheEntries:      *cacheN,
		Registry:          telemetry.Default(),
		Tracer:            tracer,
		Health:            tracker,
	})

	wd := health.NewWatchdog(tracker, health.WatchdogOptions{
		TraceDrops: tracer.Dropped, Logger: logger, Registry: srv.Registry(),
	})
	wd.Start()
	defer wd.Stop()

	if *debugAddr != "" {
		go serveDebug(*debugAddr, tracker, srv.Registry())
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if lg != nil {
		// Periodic durability point: accepted ingests become crash-safe
		// within a second. The ticker goroutine exits when Close makes
		// Checkpoint fail (shutdown) — never fatal mid-serve.
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if err := lg.Checkpoint(); err != nil {
					return
				}
			}
		}()
	}
	tracker.SetReady(true)
	logger.Info("listening", "addr", *addr,
		"pages", st.NumPages(), "locals", st.NumLocals(), "netlogs", st.NumNetLogs())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("listener failed", "err", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: flip readiness so load balancers stop routing
	// here, then stop accepting and drain in-flight requests (ingest
	// uploads included) within the drain budget.
	tracker.SetReady(false)
	logger.Info("draining")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		logger.Error("drain incomplete", "err", err)
	}
	srv.Close()
	if lg != nil {
		// The drain has quiesced ingest; flush whatever the last ticker
		// checkpoint missed and detach the WAL.
		if err := lg.Close(); err != nil {
			logger.Error("closing wal", "err", err)
		} else {
			logger.Info("wal closed", "dir", *walDir)
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			logger.Error("writing trace", "err", err)
		} else {
			logger.Info("trace written", "path", *traceOut,
				"records", tracer.Written(), "dropped", tracer.Dropped())
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal("saving store", "err", err)
		}
		if err := st.Save(f); err != nil {
			fatal("saving store", "err", err)
		}
		if err := f.Close(); err != nil {
			fatal("saving store", "err", err)
		}
		logger.Info("store saved", "path", *save)
	}
}

// serveDebug exposes the operational surface on its own listener,
// separate from the service planes: the health endpoints (/status,
// /healthz, Prometheus /metrics), the raw registry snapshot as JSON
// (/metrics.json), pprof profiles, and expvar (including the registry
// published as "telemetry").
func serveDebug(addr string, tracker *health.Tracker, reg *telemetry.Registry) {
	expvar.Publish("telemetry", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	health.Mount(mux, tracker, reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	logger.Info("debug listener up", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug listener failed", "addr", addr, "err", err)
	}
}

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
