// Command knockserved serves crawl telemetry over HTTP: concurrent
// JSON queries over mounted stores plus live ingestion of NetLog event
// streams through the same detection pipeline the offline crawler
// runs.
//
// Usage:
//
//	knockserved -in run/top100k-2020.jsonl,run/top100k-2021.jsonl
//	knockserved -in crawl.jsonl -addr :8080 -save live.jsonl
//
// Endpoints:
//
//	GET  /v1/locals?domain=&dest=&os=&crawl=&limit=   local-request records
//	GET  /v1/pages?domain=&os=&crawl=&err=&limit=     page records
//	GET  /v1/site/{domain}                            per-site report + verdicts
//	GET  /v1/summary                                  corpus summary
//	POST /v1/ingest?domain=&os=&crawl=&...            NetLog JSONL stream in, detections out
//	GET  /metrics                                     operational counters
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/serve"
	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		in        = flag.String("in", "", "comma-separated JSONL store paths to mount (optional)")
		save      = flag.String("save", "", "write the store (including ingested telemetry) to this path on shutdown")
		queryConc = flag.Int("query-concurrency", 64, "max simultaneous query requests before 429")
		ingConc   = flag.Int("ingest-concurrency", 4, "max simultaneous ingest uploads before 429")
		queryTO   = flag.Duration("query-timeout", 10*time.Second, "per-query deadline")
		ingTO     = flag.Duration("ingest-timeout", 60*time.Second, "per-upload deadline")
		cacheN    = flag.Int("cache", 512, "response cache entries (negative disables)")
		drainTO   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		debugAddr = flag.String("debug-addr", "", "serve pprof, expvar, and the raw metrics registry on this address (e.g. 127.0.0.1:6060)")
		traceOut  = flag.String("trace-out", "", "write one JSONL trace record per ingested visit to this path (inspect with knocktrace)")
	)
	flag.Parse()

	st := store.New()
	if *in != "" {
		var paths []string
		for _, p := range strings.Split(*in, ",") {
			paths = append(paths, strings.TrimSpace(p))
		}
		if err := st.LoadFiles(paths...); err != nil {
			fatalf("%v", err)
		}
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatalf("creating %s: %v", *traceOut, err)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, telemetry.TracerOptions{})
	}
	eng := queryengine.New(st)
	srv := serve.New(eng, serve.Options{
		QueryConcurrency:  *queryConc,
		IngestConcurrency: *ingConc,
		QueryTimeout:      *queryTO,
		IngestTimeout:     *ingTO,
		CacheEntries:      *cacheN,
		Registry:          telemetry.Default(),
		Tracer:            tracer,
	})

	if *debugAddr != "" {
		go serveDebug(*debugAddr, srv.Registry())
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("knockserved: listening on %s (%d pages, %d locals, %d netlogs mounted)\n",
		*addr, st.NumPages(), st.NumLocals(), st.NumNetLogs())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests
	// (ingest uploads included) within the drain budget.
	fmt.Println("knockserved: draining")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "knockserved: drain incomplete: %v\n", err)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "knockserved: writing trace: %v\n", err)
		} else {
			fmt.Printf("knockserved: wrote %d trace records to %s", tracer.Written(), *traceOut)
			if n := tracer.Dropped(); n > 0 {
				fmt.Printf(" (%d dropped under backpressure)", n)
			}
			fmt.Println()
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatalf("saving store: %v", err)
		}
		if err := st.Save(f); err != nil {
			fatalf("saving store: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("saving store: %v", err)
		}
		fmt.Printf("knockserved: store saved to %s\n", *save)
	}
}

// serveDebug exposes the operational debugging surface on its own
// listener, separate from the service planes: pprof profiles, expvar
// (including the metrics registry published as "telemetry"), and the
// raw registry snapshot.
func serveDebug(addr string, reg *telemetry.Registry) {
	expvar.Publish("telemetry", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	fmt.Printf("knockserved: debug listening on %s (pprof, expvar, registry)\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "knockserved: debug listener: %v\n", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knockserved: "+format+"\n", args...)
	os.Exit(1)
}
