// Command knockserved serves crawl telemetry over HTTP: concurrent
// JSON queries over mounted stores plus live ingestion of NetLog event
// streams through the same detection pipeline the offline crawler
// runs.
//
// Usage:
//
//	knockserved -in run/top100k-2020.jsonl,run/top100k-2021.jsonl
//	knockserved -in crawl.jsonl -addr :8080 -save live.jsonl
//
// Endpoints:
//
//	GET  /v1/locals?domain=&dest=&os=&crawl=&limit=   local-request records
//	GET  /v1/pages?domain=&os=&crawl=&err=&limit=     page records
//	GET  /v1/site/{domain}                            per-site report + verdicts
//	GET  /v1/summary                                  corpus summary
//	POST /v1/ingest?domain=&os=&crawl=&...            NetLog JSONL stream in, detections out
//	GET  /metrics                                     operational counters
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/serve"
	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		in        = flag.String("in", "", "comma-separated JSONL store paths to mount (optional)")
		save      = flag.String("save", "", "write the store (including ingested telemetry) to this path on shutdown")
		queryConc = flag.Int("query-concurrency", 64, "max simultaneous query requests before 429")
		ingConc   = flag.Int("ingest-concurrency", 4, "max simultaneous ingest uploads before 429")
		queryTO   = flag.Duration("query-timeout", 10*time.Second, "per-query deadline")
		ingTO     = flag.Duration("ingest-timeout", 60*time.Second, "per-upload deadline")
		cacheN    = flag.Int("cache", 512, "response cache entries (negative disables)")
		drainTO   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	st := store.New()
	if *in != "" {
		var paths []string
		for _, p := range strings.Split(*in, ",") {
			paths = append(paths, strings.TrimSpace(p))
		}
		if err := st.LoadFiles(paths...); err != nil {
			fatalf("%v", err)
		}
	}
	eng := queryengine.New(st)
	srv := serve.New(eng, serve.Options{
		QueryConcurrency:  *queryConc,
		IngestConcurrency: *ingConc,
		QueryTimeout:      *queryTO,
		IngestTimeout:     *ingTO,
		CacheEntries:      *cacheN,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("knockserved: listening on %s (%d pages, %d locals, %d netlogs mounted)\n",
		*addr, st.NumPages(), st.NumLocals(), st.NumNetLogs())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests
	// (ingest uploads included) within the drain budget.
	fmt.Println("knockserved: draining")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "knockserved: drain incomplete: %v\n", err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatalf("saving store: %v", err)
		}
		if err := st.Save(f); err != nil {
			fatalf("saving store: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("saving store: %v", err)
		}
		fmt.Printf("knockserved: store saved to %s\n", *save)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knockserved: "+format+"\n", args...)
	os.Exit(1)
}
