// Command knockcrawl runs a crawl campaign against the synthetic web
// and writes the telemetry store as JSONL.
//
// Usage:
//
//	knockcrawl -crawl top100k-2020 -os all -scale 0.1 -out crawl.jsonl
//	knockcrawl -crawl top100k-2020 -scale 0.1 -trace-out crawl.trace.jsonl -stage-timings
//	knockcrawl -crawl top100k-2020 -status-addr :6061   # live /status, /healthz, /metrics
//	knockcrawl -crawl top100k-2020 -wal ./2020.wal -out 2020.jsonl   # durable: kill -9 and rerun resumes
//
// A full-study reproduction (scale 1, every OS, all three campaigns):
//
//	knockcrawl -crawl top100k-2020 -os all -out 2020.jsonl
//	knockcrawl -crawl top100k-2021 -os all -out 2021.jsonl
//	knockcrawl -crawl malicious    -os all -out mal.jsonl
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/crawler"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger *slog.Logger

func main() {
	var (
		crawlName  = flag.String("crawl", "top100k-2020", "campaign: top100k-2020, top100k-2021, or malicious")
		osName     = flag.String("os", "all", "OS to crawl: Windows, Linux, Mac, or all")
		scale      = flag.Float64("scale", 1.0, "population scale in (0, 1]")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		workers    = flag.Int("workers", 0, "concurrent browser instances (0 = GOMAXPROCS)")
		window     = flag.Duration("window", 20*time.Second, "per-page observation window")
		out        = flag.String("out", "", "output JSONL path (empty = no persistence)")
		walDir     = flag.String("wal", "", "durable WAL directory: commits are journaled and checkpointed mid-crawl, and a prior run found there is resumed")
		ckptEvery  = flag.Int("checkpoint-every", 0, "visits between WAL durability checkpoints (0 = default)")
		page       = flag.String("page", "/", "page to visit on each site (/ = landing, /login = internal-pages extension)")
		netProfile = flag.String("net-profile", "", "network-condition profile (nominal, residential-congested, mobile-3g, satellite, lossy-wifi, ...); empty = nominal")
		retain     = flag.Bool("retain", false, "retain raw NetLog captures for visits with local-network activity")
		parseHTML  = flag.Bool("parsehtml", false, "crawl through the real HTML pipeline instead of the precompiled fast path")
		traceOut   = flag.String("trace-out", "", "write one JSONL trace record per visit to this path (inspect with knocktrace)")
		timings    = flag.Bool("stage-timings", false, "print a per-stage busy-time breakdown after the crawl")
		statusAddr = flag.String("status-addr", "", "serve live /status, /healthz, and Prometheus /metrics on this address")
		logFormat  = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	var err error
	logger, err = health.NewLogger(*logFormat, "knockcrawl")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockcrawl: %v\n", err)
		os.Exit(1)
	}

	crawl := groundtruth.CrawlID(*crawlName)
	switch crawl {
	case groundtruth.CrawlTop2020, groundtruth.CrawlTop2021, groundtruth.CrawlMalicious:
	default:
		fatal("unknown crawl", "crawl", *crawlName)
	}
	cfg := crawler.Config{
		Crawl: crawl, Scale: *scale, Seed: *seed, Workers: *workers,
		Window: *window, PagePath: *page, RetainLogs: *retain, ParseHTML: *parseHTML,
		NetProfile:   *netProfile,
		StageTimings: *timings,
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal("creating trace file", "path", *traceOut, "err", err)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, telemetry.TracerOptions{Registry: telemetry.Default()})
		cfg.Tracer = tracer
	}
	if *statusAddr != "" {
		// The live operations plane: progress tracker feeding /status,
		// watchdog alerting on stalls and telemetry loss, and the
		// process-default registry exposed as Prometheus /metrics.
		cfg.Health = health.New(health.Options{})
		cfg.Metrics = telemetry.Default()
		wd := health.NewWatchdog(cfg.Health, health.WatchdogOptions{
			TraceDrops: tracer.Dropped, Logger: logger,
		})
		wd.Start()
		defer wd.Stop()
		_, stopStatus, err := health.Serve(*statusAddr, cfg.Health, cfg.Metrics, logger)
		if err != nil {
			fatal("status listener", "addr", *statusAddr, "err", err)
		}
		defer stopStatus()
	}

	st := store.New()
	if *walDir != "" {
		// Durable mode: every commit is journaled in the WAL directory,
		// checkpointed mid-crawl, and a killed run resumes from whatever
		// the directory replays instead of starting over.
		wst, lg, rec, err := store.Open(*walDir, store.LogOptions{})
		if err != nil {
			fatal("opening wal", "dir", *walDir, "err", err)
		}
		defer func() {
			if err := lg.Close(); err != nil {
				fatal("closing wal", "err", err)
			}
		}()
		st = wst
		cfg.Checkpoint = lg.Checkpoint
		cfg.CheckpointEvery = *ckptEvery
		if n := rec.SegmentRecords + rec.WALRecords; n > 0 {
			cfg.Resume = true
			logger.Info("wal recovered", "dir", *walDir, "records", n,
				"segments", rec.Segments, "truncated_tail", rec.Truncated)
			fmt.Printf("resuming from %s: %d records recovered (%d segments)\n", *walDir, n, rec.Segments)
		}
	}
	var sums []*crawler.Summary
	if *osName == "all" {
		var err error
		sums, err = crawler.RunAll(cfg, st)
		if err != nil {
			fatal("crawl failed", "err", err)
		}
	} else {
		osv, err := hostenv.ParseOS(*osName)
		if err != nil {
			fatal("bad -os", "err", err)
		}
		cfg.OS = osv
		sum, err := crawler.Run(cfg, st)
		if err != nil {
			fatal("crawl failed", "err", err)
		}
		sums = []*crawler.Summary{sum}
	}

	for _, s := range sums {
		logger.Info("crawl complete", "summary", s)
		fmt.Printf("%s on %s: %d attempted, %d ok (%.1f%%), %d failed, %d local requests, %v\n",
			s.Crawl, s.OS, s.Attempted, s.Successful,
			100*float64(s.Successful)/float64(s.Attempted), s.Failed, s.LocalRequests, s.Elapsed.Round(time.Millisecond))
		for err, n := range s.Errors {
			fmt.Printf("    %-32s %d\n", err, n)
		}
		if s.RetentionErrors > 0 {
			fmt.Printf("    WARNING: %d NetLog captures could not be retained\n", s.RetentionErrors)
		}
		if s.CheckpointErrors > 0 {
			fmt.Printf("    WARNING: %d WAL checkpoints failed\n", s.CheckpointErrors)
		}
		printStageBusy(s.StageBusy)
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal("writing trace", "err", err)
		}
		fmt.Printf("wrote %d trace records to %s", tracer.Written(), *traceOut)
		if n := tracer.Dropped(); n > 0 {
			fmt.Printf(" (%d dropped under backpressure)", n)
		}
		fmt.Println()
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("creating output", "path", *out, "err", err)
		}
		defer f.Close()
		if err := st.Save(f); err != nil {
			fatal("saving store", "err", err)
		}
		fmt.Printf("wrote %d page records, %d local requests, %d retained captures to %s\n",
			st.NumPages(), st.NumLocals(), st.NumNetLogs(), *out)
	}
}

// printStageBusy renders the per-stage busy-time breakdown in the
// trace span order (visit first, commit last).
func printStageBusy(busy map[string]time.Duration) {
	if len(busy) == 0 {
		return
	}
	names := make([]string, 0, len(busy))
	for name := range busy {
		names = append(names, name)
	}
	order := map[string]int{"visit": 0, "detect": 1, "infer": 2, "classify": 3, "netlog": 4, "commit": 5}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
	fmt.Println("    stage busy time:")
	for _, name := range names {
		fmt.Printf("      %-10s %v\n", name, busy[name].Round(time.Microsecond))
	}
}

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
