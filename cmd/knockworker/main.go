// Command knockworker crawls leases from a knockfleet coordinator: it
// acquires a lease, rebuilds the deterministic world around the leased
// target range, crawls it with mid-crawl WAL checkpointing (-workdir),
// heartbeats progress through lease renewals, and uploads the shard
// store gzip-compressed when the range is done — then asks for the next
// lease until the campaign is finished.
//
// Usage:
//
//	knockworker -coordinator http://coordinator:7090 -name worker-1
//	knockworker -coordinator http://coordinator:7090 -workdir /var/lib/knock  # survive kill -9 mid-lease
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/fleet"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator control-plane URL, e.g. http://coordinator:7090")
		name        = flag.String("name", "", "worker name (default: hostname-pid)")
		workers     = flag.Int("workers", 0, "concurrent browser instances per lease (0 = GOMAXPROCS)")
		workDir     = flag.String("workdir", "", "durable lease WAL directory; a restarted worker resumes half-crawled leases")
		poll        = flag.Duration("poll", 0, "idle wait when all leases are held (0 = coordinator's suggestion)")
		statusAddr  = flag.String("status-addr", "", "serve live /status, /healthz, and Prometheus /metrics on this address")
		traceOut    = flag.String("trace-out", "", "write this worker's side of the campaign's distributed trace (per-lease and per-visit spans) as JSONL to this path; assemble with the coordinator's trace via knocktrace -assemble")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	logger, err := health.NewLogger(*logFormat, "knockworker")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockworker: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, kv ...any) {
		logger.Error(msg, kv...)
		os.Exit(1)
	}
	if *coordinator == "" {
		fatal("-coordinator is required")
	}
	cfg := fleet.WorkerConfig{
		Coordinator: *coordinator, Name: *name,
		Workers: *workers, WorkDir: *workDir,
		PollInterval: *poll, Logger: logger,
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal("creating trace file", "path", *traceOut, "err", err)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, telemetry.TracerOptions{Registry: telemetry.Default()})
		cfg.Tracer = tracer
	}
	if *statusAddr != "" {
		cfg.Health = health.New(health.Options{})
		cfg.Health.SetReady(true)
		cfg.Metrics = telemetry.Default()
		_, stopStatus, err := health.Serve(*statusAddr, cfg.Health, cfg.Metrics, logger)
		if err != nil {
			fatal("status listener", "addr", *statusAddr, "err", err)
		}
		defer stopStatus()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	sum, err := fleet.RunWorker(ctx, cfg)
	if tracer != nil {
		if terr := tracer.Close(); terr != nil {
			logger.Error("writing trace", "err", terr)
		} else {
			logger.Info("trace written", "path", *traceOut,
				"records", tracer.Written(), "dropped", tracer.Dropped())
		}
	}
	if err != nil && ctx.Err() == nil {
		fatal("worker failed", "err", err)
	}
	fmt.Printf("worker: %d leases, %d visits merged, %d duplicates deduped, %d shard bytes uploaded in %v\n",
		sum.Leases, sum.Visits, sum.Duplicates, sum.UploadBytes, time.Since(start).Round(time.Millisecond))
}
