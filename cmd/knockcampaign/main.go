// Command knockcampaign runs the full measurement operation of
// Figure 1 — all three crawl populations on every OS each covers —
// persisting one telemetry store per campaign plus a manifest, and
// resuming interrupted runs.
//
// Usage:
//
//	knockcampaign -out ./run -scale 1 -seed 20210603
//	knockcampaign -out ./run -resume        # continue after interruption
//	knockcampaign -out ./run -wal           # durable: survive kill -9 mid-leg, rerun with -resume
//	knockcampaign -out ./run -status-addr :6061   # live /status, /healthz, /metrics
//	knockreport  -in ./run/top100k-2020.jsonl,./run/top100k-2021.jsonl,./run/malicious.jsonl
//	knockdiff    -in ./run/top100k-2020.jsonl,./run/top100k-2021.jsonl,./run/malicious.jsonl
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/campaign"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger *slog.Logger

func main() {
	var (
		out        = flag.String("out", "", "output directory for stores and manifest")
		name       = flag.String("name", "knockandtalk-repro", "campaign name")
		scale      = flag.Float64("scale", 1.0, "population scale in (0, 1]")
		seed       = flag.Uint64("seed", 20210603, "deterministic seed")
		workers    = flag.Int("workers", 0, "concurrent browser instances (0 = GOMAXPROCS)")
		retain     = flag.Bool("retain", false, "retain raw NetLog captures for local-activity visits")
		netProfile = flag.String("net-profile", "", "network-condition profile for every leg (nominal, residential-congested, mobile-3g, satellite, lossy-wifi, ...); empty = nominal")
		resume     = flag.Bool("resume", false, "resume an interrupted campaign in -out")
		wal        = flag.Bool("wal", false, "durable mode: commit through a per-crawl WAL in -out, checkpointed mid-leg, so a killed campaign resumes mid-crawl")
		ckptEvery  = flag.Int("checkpoint-every", 0, "visits between WAL durability checkpoints (0 = default)")
		traceOut   = flag.String("trace-out", "", "write one JSONL trace record per visit to this path (inspect with knocktrace)")
		statusAddr = flag.String("status-addr", "", "serve live /status, /healthz, and Prometheus /metrics on this address")
		logFormat  = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)

	var err error
	logger, err = health.NewLogger(*logFormat, "knockcampaign")
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockcampaign: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fatal("-out is required")
	}
	spec := campaign.Spec{
		Name: *name, OutDir: *out, Scale: *scale, Seed: *seed,
		Workers: *workers, RetainLogs: *retain, Resume: *resume,
		NetProfile: *netProfile,
		WAL:        *wal, CheckpointEvery: *ckptEvery,
		// Stage timings are always on: the end-of-run breakdown costs a
		// few clock reads per visit and the manifest records it.
		StageTimings: true,
		Logger:       logger,
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		// The trace commonly lives in the campaign's -out directory,
		// which Run has not created yet.
		if dir := filepath.Dir(*traceOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal("creating trace dir", "dir", dir, "err", err)
			}
		}
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal("creating trace file", "path", *traceOut, "err", err)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, telemetry.TracerOptions{Registry: telemetry.Default()})
		spec.Tracer = tracer
	}
	if *statusAddr != "" {
		// The live operations plane for multi-week campaigns: every
		// (crawl, OS) leg appears on /status as it runs, the watchdog
		// flags stalled workers and telemetry loss, and the registry is
		// scrapable as Prometheus /metrics.
		spec.Health = health.New(health.Options{})
		spec.Metrics = telemetry.Default()
		wd := health.NewWatchdog(spec.Health, health.WatchdogOptions{
			TraceDrops: tracer.Dropped, Logger: logger,
		})
		wd.Start()
		defer wd.Stop()
		_, stopStatus, err := health.Serve(*statusAddr, spec.Health, spec.Metrics, logger)
		if err != nil {
			fatal("status listener", "addr", *statusAddr, "err", err)
		}
		defer stopStatus()
	}
	start := time.Now()
	m, err := campaign.Run(spec)
	if err != nil {
		fatal("campaign failed", "err", err)
	}
	stageBusy := map[string]float64{}
	for _, e := range m.Entries {
		fmt.Printf("%-14s %-8s attempted=%-7d ok=%-7d failed=%-6d local=%-5d resumed-past=%-6d %v\n",
			e.Crawl, e.OS, e.Attempted, e.Successful, e.Failed, e.LocalRequests, e.AlreadyDone,
			e.Elapsed.Round(time.Millisecond))
		for stage, sec := range e.StageBusySeconds {
			stageBusy[stage] += sec
		}
	}
	if len(stageBusy) > 0 {
		names := make([]string, 0, len(stageBusy))
		for name := range stageBusy {
			names = append(names, name)
		}
		order := map[string]int{"visit": 0, "detect": 1, "infer": 2, "classify": 3, "netlog": 4, "commit": 5}
		sort.Slice(names, func(i, j int) bool {
			oi, iok := order[names[i]]
			oj, jok := order[names[j]]
			if iok && jok {
				return oi < oj
			}
			if iok != jok {
				return iok
			}
			return names[i] < names[j]
		})
		fmt.Println("stage busy time across all crawls:")
		for _, name := range names {
			fmt.Printf("  %-10s %v\n", name, time.Duration(stageBusy[name]*float64(time.Second)).Round(time.Microsecond))
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal("writing trace", "err", err)
		}
		fmt.Printf("wrote %d trace records to %s", tracer.Written(), *traceOut)
		if n := tracer.Dropped(); n > 0 {
			fmt.Printf(" (%d dropped under backpressure)", n)
		}
		fmt.Println()
	}
	fmt.Printf("campaign %q finished in %v; stores and manifest in %s\n",
		m.Name, time.Since(start).Round(time.Millisecond), *out)
}

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
