// Command knockcampaign runs the full measurement operation of
// Figure 1 — all three crawl populations on every OS each covers —
// persisting one telemetry store per campaign plus a manifest, and
// resuming interrupted runs.
//
// Usage:
//
//	knockcampaign -out ./run -scale 1 -seed 20210603
//	knockcampaign -out ./run -resume        # continue after interruption
//	knockreport  -in ./run/top100k-2020.jsonl,./run/top100k-2021.jsonl,./run/malicious.jsonl
//	knockdiff    -in ./run/top100k-2020.jsonl,./run/top100k-2021.jsonl,./run/malicious.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/campaign"
)

func main() {
	var (
		out     = flag.String("out", "", "output directory for stores and manifest")
		name    = flag.String("name", "knockandtalk-repro", "campaign name")
		scale   = flag.Float64("scale", 1.0, "population scale in (0, 1]")
		seed    = flag.Uint64("seed", 20210603, "deterministic seed")
		workers = flag.Int("workers", 0, "concurrent browser instances (0 = GOMAXPROCS)")
		retain  = flag.Bool("retain", false, "retain raw NetLog captures for local-activity visits")
		resume  = flag.Bool("resume", false, "resume an interrupted campaign in -out")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "knockcampaign: -out is required")
		os.Exit(1)
	}
	start := time.Now()
	m, err := campaign.Run(campaign.Spec{
		Name: *name, OutDir: *out, Scale: *scale, Seed: *seed,
		Workers: *workers, RetainLogs: *retain, Resume: *resume,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockcampaign: %v\n", err)
		os.Exit(1)
	}
	for _, e := range m.Entries {
		fmt.Printf("%-14s %-8s attempted=%-7d ok=%-7d failed=%-6d local=%-5d resumed-past=%-6d %v\n",
			e.Crawl, e.OS, e.Attempted, e.Successful, e.Failed, e.LocalRequests, e.AlreadyDone,
			e.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("campaign %q finished in %v; stores and manifest in %s\n",
		m.Name, time.Since(start).Round(time.Millisecond), *out)
}
