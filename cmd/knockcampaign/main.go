// Command knockcampaign runs the full measurement operation of
// Figure 1 — all three crawl populations on every OS each covers —
// persisting one telemetry store per campaign plus a manifest, and
// resuming interrupted runs.
//
// Usage:
//
//	knockcampaign -out ./run -scale 1 -seed 20210603
//	knockcampaign -out ./run -resume        # continue after interruption
//	knockreport  -in ./run/top100k-2020.jsonl,./run/top100k-2021.jsonl,./run/malicious.jsonl
//	knockdiff    -in ./run/top100k-2020.jsonl,./run/top100k-2021.jsonl,./run/malicious.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/campaign"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory for stores and manifest")
		name     = flag.String("name", "knockandtalk-repro", "campaign name")
		scale    = flag.Float64("scale", 1.0, "population scale in (0, 1]")
		seed     = flag.Uint64("seed", 20210603, "deterministic seed")
		workers  = flag.Int("workers", 0, "concurrent browser instances (0 = GOMAXPROCS)")
		retain   = flag.Bool("retain", false, "retain raw NetLog captures for local-activity visits")
		resume   = flag.Bool("resume", false, "resume an interrupted campaign in -out")
		traceOut = flag.String("trace-out", "", "write one JSONL trace record per visit to this path (inspect with knocktrace)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "knockcampaign: -out is required")
		os.Exit(1)
	}
	spec := campaign.Spec{
		Name: *name, OutDir: *out, Scale: *scale, Seed: *seed,
		Workers: *workers, RetainLogs: *retain, Resume: *resume,
		// Stage timings are always on: the end-of-run breakdown costs a
		// few clock reads per visit and the manifest records it.
		StageTimings: true,
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		// The trace commonly lives in the campaign's -out directory,
		// which Run has not created yet.
		if dir := filepath.Dir(*traceOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "knockcampaign: creating %s: %v\n", dir, err)
				os.Exit(1)
			}
		}
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "knockcampaign: creating %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, telemetry.TracerOptions{})
		spec.Tracer = tracer
	}
	start := time.Now()
	m, err := campaign.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "knockcampaign: %v\n", err)
		os.Exit(1)
	}
	stageBusy := map[string]float64{}
	for _, e := range m.Entries {
		fmt.Printf("%-14s %-8s attempted=%-7d ok=%-7d failed=%-6d local=%-5d resumed-past=%-6d %v\n",
			e.Crawl, e.OS, e.Attempted, e.Successful, e.Failed, e.LocalRequests, e.AlreadyDone,
			e.Elapsed.Round(time.Millisecond))
		for stage, sec := range e.StageBusySeconds {
			stageBusy[stage] += sec
		}
	}
	if len(stageBusy) > 0 {
		names := make([]string, 0, len(stageBusy))
		for name := range stageBusy {
			names = append(names, name)
		}
		order := map[string]int{"visit": 0, "detect": 1, "infer": 2, "classify": 3, "netlog": 4, "commit": 5}
		sort.Slice(names, func(i, j int) bool {
			oi, iok := order[names[i]]
			oj, jok := order[names[j]]
			if iok && jok {
				return oi < oj
			}
			if iok != jok {
				return iok
			}
			return names[i] < names[j]
		})
		fmt.Println("stage busy time across all crawls:")
		for _, name := range names {
			fmt.Printf("  %-10s %v\n", name, time.Duration(stageBusy[name]*float64(time.Second)).Round(time.Microsecond))
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "knockcampaign: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace records to %s", tracer.Written(), *traceOut)
		if n := tracer.Dropped(); n > 0 {
			fmt.Printf(" (%d dropped under backpressure)", n)
		}
		fmt.Println()
	}
	fmt.Printf("campaign %q finished in %v; stores and manifest in %s\n",
		m.Name, time.Since(start).Round(time.Millisecond), *out)
}
