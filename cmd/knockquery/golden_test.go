package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/knockandtalk/knockandtalk/internal/goldencampaign"
	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
)

// TestGoldenQueries replays the pinned query battery against the seeded
// golden campaign and requires byte-identical output. The goldens were
// captured before the pipeline/SiteIndex refactor, so any drift here
// means the interrogation path changed behaviour, not just internals.
func TestGoldenQueries(t *testing.T) {
	st, err := goldencampaign.Merged()
	if err != nil {
		t.Fatalf("golden campaign: %v", err)
	}
	eng := queryengine.New(st)

	cases := []struct {
		golden string
		opts   options
	}{
		{"locals-default.txt", options{limit: 50}},
		{"locals-limit2.txt", options{limit: 2}},
		{"locals-unlimited.txt", options{limit: 0}},
		{"locals-dest-lan.txt", options{dest: "lan", limit: 50}},
		{"locals-os-windows.txt", options{osName: "Windows", dest: "localhost", limit: 50}},
		{"locals-crawl-2020.txt", options{crawl: "top100k-2020", limit: 50}},
		{"locals-domain.txt", options{domain: "mihanpajooh.com", limit: 50}},
		{"pages-limit10.txt", options{pages: true, limit: 10}},
		{"pages-err.txt", options{pages: true, errStr: "ERR_NAME_NOT_RESOLVED", limit: 5}},
		{"netlog-hola-linux.txt", options{dumpNL: true, domain: "hola.org", osName: "Linux", crawl: "top100k-2020"}},
	}
	for _, tc := range cases {
		t.Run(strings.TrimSuffix(tc.golden, ".txt"), func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.golden))
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			var buf bytes.Buffer
			if err := run(eng, tc.opts, &buf); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output differs from %s:\ngot:\n%s\nwant:\n%s",
					tc.golden, clipOut(buf.String()), clipOut(string(want)))
			}
		})
	}
}

// TestSiteQuery exercises the -site report, which postdates the goldens:
// the summary counts must agree with the filtered listings and a classified
// localhost knocker must print a verdict line.
func TestSiteQuery(t *testing.T) {
	st, err := goldencampaign.Merged()
	if err != nil {
		t.Fatalf("golden campaign: %v", err)
	}
	eng := queryengine.New(st)

	if err := run(eng, options{site: true}, &bytes.Buffer{}); err == nil {
		t.Fatal("-site without -domain should fail")
	}

	const domain = "ebay.com"
	var buf bytes.Buffer
	if err := run(eng, options{site: true, domain: domain}, &buf); err != nil {
		t.Fatalf("run -site: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "site "+domain+": ") {
		t.Fatalf("missing site summary line:\n%s", clipOut(out))
	}
	_, locTotal := eng.Locals(queryengine.LocalsFilter{Domain: domain})
	_, pagTotal := eng.Pages(queryengine.PagesFilter{Domain: domain})
	if locTotal == 0 || pagTotal == 0 {
		t.Fatalf("golden campaign should have activity for %s (pages=%d locals=%d)", domain, pagTotal, locTotal)
	}
	rep := eng.Site(domain)
	if len(rep.Pages) != pagTotal || len(rep.Locals) != locTotal {
		t.Fatalf("site report counts (pages=%d locals=%d) disagree with filtered listings (pages=%d locals=%d)",
			len(rep.Pages), len(rep.Locals), pagTotal, locTotal)
	}
	if rep.LocalhostVerdict == nil {
		t.Fatalf("%s probes localhost in the campaign; expected a verdict", domain)
	}
	if !strings.Contains(out, "verdict localhost") {
		t.Fatalf("missing localhost verdict line:\n%s", clipOut(out))
	}
	// Every row printed once: summary + verdict lines + pages + locals.
	lines := strings.Count(strings.TrimRight(out, "\n"), "\n") + 1
	verdicts := 1
	if rep.LANVerdict != nil {
		verdicts++
	}
	if want := 1 + verdicts + pagTotal + locTotal; lines != want {
		t.Fatalf("expected %d output lines, got %d:\n%s", want, lines, clipOut(out))
	}
}

func clipOut(s string) string {
	const max = 2000
	if len(s) > max {
		return s[:max] + "…(clipped)"
	}
	return s
}
