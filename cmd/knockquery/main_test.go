package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

// querySt builds a small deterministic store covering both record kinds,
// several crawls/OSes, and more rows than the smallest limit under test.
func querySt(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	var b store.Batch
	for i, d := range []string{"alpha.example", "beta.example", "gamma.example"} {
		b.AddPage(store.PageRecord{
			Crawl: "top100k-2020", OS: "Windows", Domain: d, Rank: i + 1,
			URL: "https://" + d + "/", CommittedAt: time.Second,
		})
		b.AddPage(store.PageRecord{
			Crawl: "top100k-2021", OS: "Linux", Domain: d, Rank: i + 1,
			URL: "https://" + d + "/", Err: "ERR_NAME_NOT_RESOLVED",
		})
		for port := 5900; port < 5904; port++ {
			b.AddLocal(store.LocalRequest{
				Crawl: "top100k-2020", OS: "Windows", Domain: d, Rank: i + 1,
				URL:    fmt.Sprintf("wss://localhost:%d/", port),
				Scheme: "wss", Host: "localhost", Port: uint16(port), Path: "/",
				Dest: "localhost", Delay: 1500 * time.Millisecond,
				Initiator: "blob:threatmetrix", NetError: "ERR_CONNECTION_REFUSED",
			})
		}
		b.AddLocal(store.LocalRequest{
			Crawl: "top100k-2021", OS: "Linux", Domain: d, Rank: i + 1,
			URL: "http://192.168.0.10/wp-content/x.png", Scheme: "http",
			Host: "192.168.0.10", Port: 80, Path: "/wp-content/x.png",
			Dest: "lan", Delay: 2 * time.Second, StatusCode: 200,
		})
	}
	st.AddBatch(&b)
	return st
}

// legacyRun reproduces the pre-refactor knockquery query loops (inline
// store filters, manual limit counting) so the refactor onto the shared
// query engine is pinned: for every flag combination the engine path
// must print byte-identical output. One deliberate difference from the
// verbatim original: rows are brought into canonical store order before
// printing, because raw shard iteration order depends on a per-process
// hash seed — the engine now sorts, and this pin sorts the same way.
func legacyRun(st *store.Store, opts options, w *bytes.Buffer) {
	printed := 0
	room := func() bool { return opts.limit == 0 || printed < opts.limit }
	if opts.pages {
		rows := st.Pages(func(p *store.PageRecord) bool {
			return (opts.domain == "" || p.Domain == opts.domain) &&
				(opts.osName == "" || p.OS == opts.osName) &&
				(opts.crawl == "" || p.Crawl == opts.crawl) &&
				(opts.errStr == "" || p.Err == opts.errStr)
		})
		store.SortPages(rows)
		for _, p := range rows {
			if !room() {
				break
			}
			printed++
			status := "OK"
			if p.Err != "" {
				status = p.Err
			}
			fmt.Fprintf(w, "%-14s %-8s rank=%-6d %-40s %s\n", p.Crawl, p.OS, p.Rank, p.Domain, status)
		}
		fmt.Fprintf(w, "-- %d of %d matching page records\n", printed, len(rows))
		return
	}
	rows := st.Locals(func(l *store.LocalRequest) bool {
		return (opts.domain == "" || l.Domain == opts.domain) &&
			(opts.dest == "" || l.Dest == opts.dest) &&
			(opts.osName == "" || l.OS == opts.osName) &&
			(opts.crawl == "" || l.Crawl == opts.crawl)
	})
	store.SortLocals(rows)
	for _, l := range rows {
		if !room() {
			break
		}
		printed++
		outcome := fmt.Sprint(l.StatusCode)
		if l.NetError != "" {
			outcome = l.NetError
		}
		fmt.Fprintf(w, "%-14s %-8s %-30s %-6s %-44s delay=%-8s %s\n",
			l.Crawl, l.OS, l.Domain, l.Dest, l.URL, l.Delay.Round(1e6), outcome)
	}
	fmt.Fprintf(w, "-- %d of %d matching local requests\n", printed, len(rows))
}

func TestRunMatchesLegacyOutput(t *testing.T) {
	st := querySt(t)
	eng := queryengine.New(st)
	cases := []options{
		{limit: 50},
		{limit: 0}, // 0 = unlimited
		{limit: 2},
		{domain: "beta.example", limit: 50},
		{dest: "lan", limit: 50},
		{dest: "localhost", osName: "Windows", limit: 3},
		{crawl: "top100k-2021", limit: 50},
		{pages: true, limit: 50},
		{pages: true, limit: 1},
		{pages: true, errStr: "ERR_NAME_NOT_RESOLVED", limit: 50},
		{pages: true, domain: "gamma.example", osName: "Windows", limit: 50},
		{domain: "nosuch.example", limit: 50},
	}
	for _, opts := range cases {
		var got, want bytes.Buffer
		if err := run(eng, opts, &got); err != nil {
			t.Fatalf("run(%+v): %v", opts, err)
		}
		legacyRun(st, opts, &want)
		if got.String() != want.String() {
			t.Errorf("output drift for %+v:\nengine path:\n%slegacy path:\n%s", opts, got.String(), want.String())
		}
	}
}

func TestRunNetLogRequiresSelectors(t *testing.T) {
	eng := queryengine.New(querySt(t))
	var buf bytes.Buffer
	err := run(eng, options{dumpNL: true, domain: "alpha.example"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-netlog requires") {
		t.Fatalf("err = %v, want missing-selector error", err)
	}
	err = run(eng, options{dumpNL: true, domain: "alpha.example", osName: "Windows", crawl: "top100k-2020"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "no retained capture") {
		t.Fatalf("err = %v, want no-retained-capture error", err)
	}
}
