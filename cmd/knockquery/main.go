// Command knockquery runs ad-hoc queries over stored crawl telemetry.
//
// Usage:
//
//	knockquery -in crawl.jsonl -domain ebay.com
//	knockquery -in crawl.jsonl -dest lan -os Linux
//	knockquery -in crawl.jsonl -pages -err ERR_NAME_NOT_RESOLVED -limit 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/store"
)

func main() {
	var (
		in     = flag.String("in", "", "comma-separated JSONL store paths")
		domain = flag.String("domain", "", "filter by domain")
		dest   = flag.String("dest", "", "filter local requests by destination (localhost or lan)")
		osName = flag.String("os", "", "filter by OS (Windows, Linux, Mac)")
		crawl  = flag.String("crawl", "", "filter by crawl id")
		errStr = flag.String("err", "", "filter pages by net error")
		pages  = flag.Bool("pages", false, "query page records instead of local requests")
		dumpNL = flag.Bool("netlog", false, "dump the retained NetLog flows for -domain (requires -domain, -os, -crawl)")
		limit  = flag.Int("limit", 50, "maximum rows printed (0 = unlimited)")
	)
	flag.Parse()
	if *in == "" {
		fatalf("-in is required")
	}
	st := store.New()
	for _, path := range strings.Split(*in, ",") {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			fatalf("opening %s: %v", path, err)
		}
		if err := st.Load(f); err != nil {
			fatalf("loading %s: %v", path, err)
		}
		f.Close()
	}

	printed := 0
	room := func() bool { return *limit == 0 || printed < *limit }

	if *dumpNL {
		if *domain == "" || *osName == "" || *crawl == "" {
			fatalf("-netlog requires -domain, -os, and -crawl")
		}
		log, ok, err := st.NetLog(*crawl, *osName, *domain)
		if err != nil {
			fatalf("%v", err)
		}
		if !ok {
			fatalf("no retained capture for %s on %s in %s (crawl with -retain)", *domain, *osName, *crawl)
		}
		for _, f := range log.Flows() {
			outcome := fmt.Sprint(f.StatusCode)
			if f.NetError != "" {
				outcome = f.NetError
			}
			fmt.Printf("+%-10v %-60s %-24s %s\n", f.Start.Round(time.Millisecond), f.URL, f.Initiator, outcome)
			for _, loc := range f.RedirectedTo {
				fmt.Printf("    -> redirect to %s\n", loc)
			}
		}
		return
	}

	if *pages {
		rows := st.Pages(func(p *store.PageRecord) bool {
			return (*domain == "" || p.Domain == *domain) &&
				(*osName == "" || p.OS == *osName) &&
				(*crawl == "" || p.Crawl == *crawl) &&
				(*errStr == "" || p.Err == *errStr)
		})
		for _, p := range rows {
			if !room() {
				break
			}
			printed++
			status := "OK"
			if p.Err != "" {
				status = p.Err
			}
			fmt.Printf("%-14s %-8s rank=%-6d %-40s %s\n", p.Crawl, p.OS, p.Rank, p.Domain, status)
		}
		fmt.Printf("-- %d of %d matching page records\n", printed, len(rows))
		return
	}

	rows := st.Locals(func(l *store.LocalRequest) bool {
		return (*domain == "" || l.Domain == *domain) &&
			(*dest == "" || l.Dest == *dest) &&
			(*osName == "" || l.OS == *osName) &&
			(*crawl == "" || l.Crawl == *crawl)
	})
	for _, l := range rows {
		if !room() {
			break
		}
		printed++
		outcome := fmt.Sprint(l.StatusCode)
		if l.NetError != "" {
			outcome = l.NetError
		}
		fmt.Printf("%-14s %-8s %-30s %-6s %-44s delay=%-8s %s\n",
			l.Crawl, l.OS, l.Domain, l.Dest, l.URL, l.Delay.Round(1e6), outcome)
	}
	fmt.Printf("-- %d of %d matching local requests\n", printed, len(rows))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knockquery: "+format+"\n", args...)
	os.Exit(1)
}
