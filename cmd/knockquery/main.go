// Command knockquery runs ad-hoc queries over stored crawl telemetry.
// It is a thin CLI over the same query engine the knockserved HTTP
// service uses, so the two interrogation paths cannot drift.
//
// Usage:
//
//	knockquery -in crawl.jsonl -domain ebay.com
//	knockquery -in crawl.jsonl -dest lan -os Linux
//	knockquery -in crawl.jsonl -pages -err ERR_NAME_NOT_RESOLVED -limit 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/classify"
	"github.com/knockandtalk/knockandtalk/internal/health"
	"github.com/knockandtalk/knockandtalk/internal/serve/queryengine"
	"github.com/knockandtalk/knockandtalk/internal/store"
	"github.com/knockandtalk/knockandtalk/internal/telemetry"
)

var logger, _ = health.LoggerTo(os.Stderr, "text", "knockquery")

// options carries the parsed flags; separated from main so the query
// paths are testable end to end.
type options struct {
	domain string
	dest   string
	osName string
	crawl  string
	errStr string
	pages  bool
	site   bool
	dumpNL bool
	limit  int
}

func main() {
	var (
		in     = flag.String("in", "", "comma-separated JSONL store paths")
		domain = flag.String("domain", "", "filter by domain")
		dest   = flag.String("dest", "", "filter local requests by destination (localhost or lan)")
		osName = flag.String("os", "", "filter by OS (Windows, Linux, Mac)")
		crawl  = flag.String("crawl", "", "filter by crawl id")
		errStr = flag.String("err", "", "filter pages by net error")
		pages  = flag.Bool("pages", false, "query page records instead of local requests")
		site   = flag.Bool("site", false, "print -domain's full site report: visits, local requests, verdicts")
		dumpNL = flag.Bool("netlog", false, "dump the retained NetLog flows for -domain (requires -domain, -os, -crawl)")
		limit  = flag.Int("limit", 50, "maximum rows printed (0 = unlimited)")
	)
	flag.Parse()
	telemetry.RegisterBuildInfo(nil)
	if *in == "" {
		fatalf("-in is required")
	}
	st := store.New()
	var paths []string
	for _, path := range strings.Split(*in, ",") {
		paths = append(paths, strings.TrimSpace(path))
	}
	if err := st.LoadFiles(paths...); err != nil {
		fatalf("%v", err)
	}
	opts := options{
		domain: *domain, dest: *dest, osName: *osName, crawl: *crawl,
		errStr: *errStr, pages: *pages, site: *site, dumpNL: *dumpNL, limit: *limit,
	}
	eng := queryengine.New(st)
	err := run(eng, opts, os.Stdout)
	// Close drops the shared site index a -site query registers for the
	// store; a leak is harmless here but the engine owns the contract.
	eng.Close()
	if err != nil {
		fatalf("%v", err)
	}
}

// run executes one query against the engine and prints the rows.
func run(eng *queryengine.Engine, opts options, w io.Writer) error {
	if opts.dumpNL {
		if opts.domain == "" || opts.osName == "" || opts.crawl == "" {
			return fmt.Errorf("-netlog requires -domain, -os, and -crawl")
		}
		log, ok, err := eng.NetLog(opts.crawl, opts.osName, opts.domain)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("no retained capture for %s on %s in %s (crawl with -retain)",
				opts.domain, opts.osName, opts.crawl)
		}
		for _, f := range log.Flows() {
			outcome := fmt.Sprint(f.StatusCode)
			if f.NetError != "" {
				outcome = f.NetError
			}
			fmt.Fprintf(w, "+%-10v %-60s %-24s %s\n", f.Start.Round(time.Millisecond), f.URL, f.Initiator, outcome)
			for _, loc := range f.RedirectedTo {
				fmt.Fprintf(w, "    -> redirect to %s\n", loc)
			}
		}
		return nil
	}

	if opts.site {
		if opts.domain == "" {
			return fmt.Errorf("-site requires -domain")
		}
		rep := eng.Site(opts.domain)
		fmt.Fprintf(w, "site %s: %d page visits, %d local requests\n",
			rep.Domain, len(rep.Pages), len(rep.Locals))
		for _, v := range []struct {
			dest    string
			verdict *classify.Verdict
		}{
			{"localhost", rep.LocalhostVerdict},
			{"lan", rep.LANVerdict},
		} {
			if v.verdict == nil {
				continue
			}
			line := fmt.Sprintf("verdict %-10s %s (signature %q", v.dest, v.verdict.Class, v.verdict.Signature)
			if v.verdict.Corroboration != "" {
				line += ", corroborated by " + v.verdict.Corroboration
			}
			fmt.Fprintln(w, line+")")
		}
		for _, p := range rep.Pages {
			status := "OK"
			if p.Err != "" {
				status = p.Err
			}
			fmt.Fprintf(w, "%-14s %-8s rank=%-6d %-40s %s\n", p.Crawl, p.OS, p.Rank, p.Domain, status)
		}
		for _, l := range rep.Locals {
			outcome := fmt.Sprint(l.StatusCode)
			if l.NetError != "" {
				outcome = l.NetError
			}
			fmt.Fprintf(w, "%-14s %-8s %-30s %-6s %-44s delay=%-8s %s\n",
				l.Crawl, l.OS, l.Domain, l.Dest, l.URL, l.Delay.Round(1e6), outcome)
		}
		return nil
	}

	if opts.pages {
		rows, total := eng.Pages(queryengine.PagesFilter{
			Domain: opts.domain, OS: opts.osName, Crawl: opts.crawl,
			Err: opts.errStr, Limit: opts.limit,
		})
		for _, p := range rows {
			status := "OK"
			if p.Err != "" {
				status = p.Err
			}
			fmt.Fprintf(w, "%-14s %-8s rank=%-6d %-40s %s\n", p.Crawl, p.OS, p.Rank, p.Domain, status)
		}
		fmt.Fprintf(w, "-- %d of %d matching page records\n", len(rows), total)
		return nil
	}

	rows, total := eng.Locals(queryengine.LocalsFilter{
		Domain: opts.domain, Dest: opts.dest, OS: opts.osName,
		Crawl: opts.crawl, Limit: opts.limit,
	})
	for _, l := range rows {
		outcome := fmt.Sprint(l.StatusCode)
		if l.NetError != "" {
			outcome = l.NetError
		}
		fmt.Fprintf(w, "%-14s %-8s %-30s %-6s %-44s delay=%-8s %s\n",
			l.Crawl, l.OS, l.Domain, l.Dest, l.URL, l.Delay.Round(1e6), outcome)
	}
	fmt.Fprintf(w, "-- %d of %d matching local requests\n", len(rows), total)
	return nil
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
