// Live detector: the study's detection pipeline on REAL network
// traffic.
//
// The example stands up two genuine HTTP servers on 127.0.0.1 — one
// playing a native application's local API, one a forgotten WordPress
// dev server — then drives real requests through an instrumented
// net/http transport and a raw TCP port scan, exactly the traffic
// shapes the paper observed. The same canonical visit pipeline used on
// the simulated crawls runs unchanged over the recorded NetLog.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/knockandtalk/knockandtalk/internal/netlog"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/realnet"
	"github.com/knockandtalk/knockandtalk/internal/store"
)

func main() {
	// A native application's localhost API (it would answer a PNA
	// preflight in a post-§5.3 world).
	app := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"client":"installed","version":"2.1"}`)
	}))
	defer app.Close()

	// A development remnant: files that only existed on the developer's
	// machine.
	devServer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer devServer.Close()

	rec := netlog.NewRecorder()
	client := &http.Client{Transport: realnet.NewTransport(rec), Timeout: 3 * time.Second}

	// "Page" behavior 1: probe the native app.
	get(client, app.URL+"/socket.io/?EIO=4")
	// "Page" behavior 2: fetch a leftover wp-content asset.
	get(client, devServer.URL+"/wp-content/uploads/2020/04/banner.jpg")
	// "Page" behavior 3: a short ThreatMetrix-style port scan of
	// remote-desktop ports, raw TCP.
	for i, port := range []uint16{5900, 5901, 5939} {
		res := realnet.ProbePort(rec, time.Duration(i)*10*time.Millisecond, "127.0.0.1", port, 500*time.Millisecond)
		fmt.Printf("probe 127.0.0.1:%-5d open=%-5v err=%-24s elapsed=%v\n", port, res.Open, orDash(string(res.Err)), res.Elapsed.Round(time.Microsecond))
	}
	fmt.Println()

	// Detection: the recorded NetLog runs through the same pipeline that
	// processes simulated crawls; its record construction stage yields
	// store-ready rows with the full visit context attached.
	out := pipeline.Process(rec.Log(), pipeline.Visit{
		Crawl: "live", OS: "Linux", Domain: "live",
	}, pipeline.Options{})
	fmt.Printf("detected %d local-network requests in real traffic:\n", len(out.Findings))
	byDomain := map[string][]store.LocalRequest{}
	for i, f := range out.Findings {
		outcome := f.NetError
		if outcome == "" {
			outcome = fmt.Sprintf("status %d", f.StatusCode)
		}
		fmt.Printf("  %-8s %-52s %s\n", f.Dest, f.URL, outcome)
		key := fmt.Sprintf("%s:%d", f.Host, f.Port)
		r := out.Locals[i]
		r.Domain = key
		byDomain[key] = append(byDomain[key], r)
	}
	fmt.Println()
	for key, reqs := range byDomain {
		// Classification and corroboration through the pipeline's
		// investigation stage — the same routing the crawler, ingest
		// service, and fraud-detection example use. Real traffic has no
		// WHOIS registry, so verdicts stay signature-only.
		v := pipeline.Classify(reqs[0].Dest, reqs, nil)
		fmt.Printf("classification %-22s → %-20s (signature %q)\n", key, v.Class, v.Signature)
	}

	// Persist like the crawler would.
	st := store.New()
	for _, reqs := range byDomain {
		for _, r := range reqs {
			st.AddLocal(r)
		}
	}
	fmt.Printf("\nstored %d local request records\n", st.NumLocals())
}

func get(c *http.Client, url string) {
	resp, err := c.Get(url)
	if err != nil {
		log.Printf("GET %s: %v", url, err)
		return
	}
	resp.Body.Close()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
