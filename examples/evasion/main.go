// Evasion experiment (§5.1): the paper argues that web-based localhost
// scanning for anti-abuse is easy to evade — "attackers could configure
// a remote control server on a bot to run on a non-standard port" —
// because the scan's port list is visible to anyone who loads the page.
//
// This example builds two Windows machines: one running a remote-desktop
// server on its standard port (5939, TeamViewer) and one running the
// same software moved to a non-standard port (40113). The ThreatMetrix
// scan fires on both; only the first machine produces a distinguishing
// signal. The information imbalance is concrete: the defender's port
// list is public, the attacker's choice is not.
package main

import (
	"fmt"
	"log"

	"github.com/knockandtalk/knockandtalk/internal/browser"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/probeinfer"
	"github.com/knockandtalk/knockandtalk/internal/simnet"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

// remoteControlService is what a remote-access tool looks like to a
// probe: it accepts TCP but speaks its own protocol.
func remoteControlService() simnet.Service {
	return simnet.ServiceFunc(func(req *simnet.Request) *simnet.Response {
		return &simnet.Response{Status: 0} // not HTTP
	})
}

func main() {
	world, err := websim.Build(groundtruth.CrawlTop2020, hostenv.Windows, 0.01, 42)
	if err != nil {
		log.Fatal(err)
	}

	machines := []struct {
		label string
		port  uint16
	}{
		{"victim A: remote control on the standard port (5939)", 5939},
		{"victim B: same software moved to port 40113 (evasion)", 40113},
	}
	for _, m := range machines {
		// A clean Windows machine (no stock listeners) plus the
		// attacker-controlled remote-access tool.
		profile := hostenv.NewProfile(hostenv.Windows, "10", simnet.VantageCampus)
		profile.ListenLocal(m.port, simnet.Endpoint{
			Outcome: simnet.DialAccepted, Service: remoteControlService(),
		})
		b := browser.New(profile, world.Net, browser.DefaultOptions())
		res := b.Visit("https://ebay.com/") // a ThreatMetrix deployer

		// What the scanner learns, via the §4.3.2 timing/handshake side
		// channel: refused ports answer instantly with RST, listening
		// ones fail at the TLS/WS layer — a distinguishable signal.
		infs := probeinfer.FromLog(res.Log)
		for _, inf := range infs {
			if inf.State == probeinfer.StateOpen {
				fmt.Printf("  scanner sees port %-6d: %s → host flagged\n", inf.Port, inf.Evidence)
			}
		}
		profile2 := probeinfer.Summarize(infs)
		verdict := "host profiled as remote-controlled"
		if !profile2.Suspicious() {
			verdict = "scan sees only refused ports — evasion succeeded"
		}
		fmt.Printf("%s\n  → %d of %d probed ports answering: %s\n\n", m.label, len(profile2.Open), len(infs), verdict)
	}

	fmt.Println("The scan's port list ships to every visitor in the page source;")
	fmt.Println("moving the service off-list costs the attacker one config line (§5.1).")
}
