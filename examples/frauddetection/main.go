// Fraud-detection deep dive: reproduce §4.3.1 for a single site.
//
// The example visits ebay.com's landing page on all three OSes and
// shows what the paper's manual investigation found: on Windows a
// dynamically generated ThreatMetrix script opens WSS connections to
// the fourteen standard remote-desktop ports; on Linux and Mac the page
// stays quiet. Each probed port is annotated with the service it
// detects (Table 4) and the connection outcome — including the timing
// side channel between a refused port and an answering one.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/knockandtalk/knockandtalk/internal/browser"
	"github.com/knockandtalk/knockandtalk/internal/groundtruth"
	"github.com/knockandtalk/knockandtalk/internal/hostenv"
	"github.com/knockandtalk/knockandtalk/internal/pipeline"
	"github.com/knockandtalk/knockandtalk/internal/portdb"
	"github.com/knockandtalk/knockandtalk/internal/websim"
)

func main() {
	for _, os := range hostenv.AllOS {
		world, err := websim.Build(groundtruth.CrawlTop2020, os, 0.01, 42)
		if err != nil {
			log.Fatal(err)
		}
		b := browser.New(hostenv.DefaultProfile(os), world.Net, browser.DefaultOptions())
		res := b.Visit("https://ebay.com/")

		// The canonical visit pipeline, with the investigation stages
		// on: classification by network signature, corroborated via
		// WHOIS on the script host — the way §4.3.1 attributed it.
		out := pipeline.Process(res.Log, pipeline.Visit{
			Crawl: string(groundtruth.CrawlTop2020), OS: os.String(),
			Domain: "ebay.com", URL: "https://ebay.com/",
			FinalURL: res.FinalURL, CommittedAt: res.CommittedAt,
		}, pipeline.Options{Classify: true, Whois: world.Whois})
		findings := out.Findings

		fmt.Printf("=== ebay.com on %s (page loaded in %v, %d NetLog events) ===\n",
			os, res.CommittedAt.Round(1e6), res.Log.Len())
		if len(findings) == 0 {
			fmt.Println("    no local-network activity — the ThreatMetrix script targets Windows only")
			fmt.Println()
			continue
		}
		sort.Slice(findings, func(i, j int) bool { return findings[i].At < findings[j].At })
		for _, f := range findings {
			svc := "(unlisted)"
			if e, ok := portdb.Lookup(f.Port); ok {
				svc = e.Service
			}
			outcome := f.NetError
			if outcome == "" {
				outcome = fmt.Sprintf("status %d", f.StatusCode)
			}
			fmt.Printf("    +%-8v %-26s port %-6d %-34s %s\n",
				f.At.Round(1e6), f.URL[:min(26, len(f.URL))], f.Port, svc, outcome)
		}
		fmt.Printf("    → %d WSS probes from initiator %q; WebSockets bypass the Same-Origin Policy,\n",
			len(findings), findings[0].Initiator)
		fmt.Println("      so the script can read handshake results and fingerprint remote-control software.")

		if out.LocalhostVerdict != nil {
			verdict := *out.LocalhostVerdict
			fmt.Printf("    → verdict: %s via %q, corroborated by %s\n\n",
				verdict.Class, verdict.Signature, verdict.Corroboration)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
