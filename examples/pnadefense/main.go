// PNA defense evaluation (§5.3): crawl a slice of the 2020 population,
// then replay every observed local-network request under three policy
// variants of the WICG Private Network Access proposal — no policy, the
// secure-context requirement alone, and the full draft (secure context
// plus preflight opt-in).
//
// The outcome mirrors the paper's argument: the full draft blocks the
// host-profiling scans and developer-error traffic while the legitimate
// native-application use case (whose servers would ship the opt-in
// header) survives.
package main

import (
	"fmt"
	"log"

	knockandtalk "github.com/knockandtalk/knockandtalk"
)

func main() {
	st := knockandtalk.NewStore()
	for _, os := range []knockandtalk.OS{knockandtalk.Windows, knockandtalk.Linux, knockandtalk.MacOSX} {
		if _, err := knockandtalk.Run(knockandtalk.Config{
			Crawl: knockandtalk.CrawlTop2020,
			OS:    os,
			Scale: 0.25, // top 25K: includes anti-abuse, native-app, and dev-error sites
			Seed:  42,
		}, st); err != nil {
			log.Fatal(err)
		}
	}

	policies := []struct {
		name   string
		policy knockandtalk.PNAPolicy
	}{
		{"no policy (status quo)", knockandtalk.PNAPolicy{}},
		{"secure context only", knockandtalk.PNAPolicy{RequireSecureContext: true}},
		{"full WICG draft", knockandtalk.PNAWICGDraft},
	}
	for _, p := range policies {
		fmt.Printf("=== %s ===\n", p.name)
		total, blocked := 0, 0
		for _, row := range knockandtalk.AuditPNA(st, knockandtalk.CrawlTop2020, p.policy) {
			total += row.Requests
			blocked += row.Blocked()
			fmt.Printf("  %-20s sites=%-3d requests=%-4d allowed=%-4d blocked=%-4d (insecure=%d, no-opt-in=%d)\n",
				row.Class, row.Sites, row.Requests, row.Allowed, row.Blocked(),
				row.BlockedInsecure, row.BlockedNoOptIn)
		}
		if total > 0 {
			fmt.Printf("  overall: %d/%d requests blocked (%.0f%%)\n\n", blocked, total, 100*float64(blocked)/float64(total))
		}
	}
}
