// Quickstart: crawl a slice of the 2020 top-list population on Windows,
// detect local-network activity, and print the headline results — the
// whole pipeline in about twenty lines.
package main

import (
	"fmt"
	"log"

	knockandtalk "github.com/knockandtalk/knockandtalk"
)

func main() {
	st := knockandtalk.NewStore()

	// Crawl the top 1,000 domains of the 2020 snapshot (scale 0.01) on
	// Windows. Scale 1 reproduces the full 100K-domain study.
	sum, err := knockandtalk.Run(knockandtalk.Config{
		Crawl: knockandtalk.CrawlTop2020,
		OS:    knockandtalk.Windows,
		Scale: 0.01,
		Seed:  42,
	}, st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d pages: %d ok, %d failed, %d local-network requests\n\n",
		sum.Attempted, sum.Successful, sum.Failed, sum.LocalRequests)

	// Which sites knocked on the local network, and why?
	for _, site := range knockandtalk.LocalSites(st, knockandtalk.CrawlTop2020, "localhost") {
		fmt.Printf("rank %-6d %-24s %-20s via %q on %s\n",
			site.Rank, site.Domain, site.Verdict.Class, site.Verdict.Signature, site.OS)
	}
	fmt.Println()
	fmt.Print(knockandtalk.ReportHeadline(st, knockandtalk.CrawlTop2020))
}
